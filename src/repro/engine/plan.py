"""Execution plans and the per-layer streaming engine.

An :class:`ExecutionPlan` captures the static shape of one layer's per-batch
computation — input width, hidden hypercolumn layout and the maximum batch
size — and knows how to allocate the matching :class:`LayerWorkspace`.  A
:class:`LayerEngine` binds a plan to a compute backend and streams batches
through the backend's fused entry points, so the layer code contains no
per-batch arithmetic: one ``fused_update`` dispatch per training batch, one
``forward`` dispatch per inference batch.

The engine is rebuilt only when something static changes (backend swapped,
layer rebuilt with new sizes, batch larger than planned); remainder batches
reuse leading slices of the same buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.backend.base import Backend
from repro.engine.workspace import LayerWorkspace
from repro.exceptions import ConfigurationError

__all__ = ["ExecutionPlan", "LayerEngine"]


@dataclass(frozen=True)
class ExecutionPlan:
    """Static shape of one layer's batched execution.

    Parameters
    ----------
    n_input:
        Number of input units feeding the layer.
    hidden_sizes:
        Hypercolumn layout of the layer's output (``(n_classes,)`` for a
        supervised head).
    batch_size:
        Largest batch the workspace must accommodate.
    """

    n_input: int
    hidden_sizes: Tuple[int, ...]
    batch_size: int

    def __post_init__(self) -> None:
        if self.n_input <= 0 or self.batch_size <= 0 or not self.hidden_sizes:
            raise ConfigurationError(f"invalid execution plan: {self}")
        if any(int(s) <= 0 for s in self.hidden_sizes):
            raise ConfigurationError("hidden sizes must be positive")

    @property
    def n_hidden(self) -> int:
        return int(sum(self.hidden_sizes))

    @classmethod
    def for_traces(cls, traces, batch_size: int) -> "ExecutionPlan":
        """Plan matching a :class:`~repro.core.traces.ProbabilityTraces` layout."""
        return cls(
            n_input=int(traces.n_input),
            hidden_sizes=tuple(int(s) for s in traces.hidden_sizes),
            batch_size=int(batch_size),
        )

    def allocate(self) -> LayerWorkspace:
        """Allocate the workspace buffers this plan requires."""
        return LayerWorkspace(self.n_input, self.n_hidden, self.batch_size)


class LayerEngine:
    """Streams batches of one layer's arithmetic through a compute backend.

    The engine owns the workspace for its plan and forwards every dispatch to
    the backend's fused, ``out=``-style primitives.  Buffers returned by
    :meth:`forward` / :meth:`fused_update` are views into the workspace and
    remain valid only until the next dispatch.
    """

    def __init__(self, backend: Backend, plan: ExecutionPlan) -> None:
        if not isinstance(backend, Backend):
            raise ConfigurationError("LayerEngine requires a Backend instance")
        self.backend = backend
        self.plan = plan
        self.workspace = plan.allocate()

    # ------------------------------------------------------------ capacity
    def accommodates(self, n_rows: int) -> bool:
        return self.workspace.accommodates(n_rows)

    def matches(self, n_input: int, hidden_sizes: Tuple[int, ...]) -> bool:
        """Whether the plan still matches a layer's (possibly rebuilt) shape."""
        return self.plan.n_input == int(n_input) and self.plan.hidden_sizes == tuple(
            int(s) for s in hidden_sizes
        )

    # ----------------------------------------------------------- dispatch
    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: Optional[np.ndarray],
        bias_gain: float = 1.0,
    ) -> np.ndarray:
        """Hidden activations for a batch, written into the workspace."""
        n_rows = np.asarray(x).shape[0]
        return self.backend.forward_into(
            x,
            weights,
            bias,
            mask_expanded,
            self.plan.hidden_sizes,
            bias_gain,
            out=self.workspace.activations[:n_rows],
            workspace=self.workspace,
        )

    def fused_update(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: Optional[np.ndarray],
        bias_gain: float,
        traces,
        taupdt: float,
        activity_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> np.ndarray:
        """One fused training dispatch: forward + statistics + trace update.

        Mutates ``traces`` in place and returns the forward activations (a
        workspace view).
        """
        activations = self.backend.fused_update(
            x,
            weights,
            bias,
            mask_expanded,
            self.plan.hidden_sizes,
            bias_gain,
            traces.p_i,
            traces.p_j,
            traces.p_ij,
            taupdt,
            activity_fn=activity_fn,
            workspace=self.workspace,
        )
        traces.updates_seen += 1
        return activations

    def update_traces(self, x: np.ndarray, a: np.ndarray, traces, taupdt: float) -> None:
        """Fused statistics + trace update for precomputed activity ``a``.

        This is the supervised-head path: the target activity is known ahead
        of time (one-hot labels), so no forward pass is dispatched.
        """
        self.backend.update_traces(
            x, a, traces.p_i, traces.p_j, traces.p_ij, taupdt, workspace=self.workspace
        )
        traces.updates_seen += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LayerEngine(backend={self.backend.name}, plan={self.plan})"
