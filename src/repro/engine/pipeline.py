"""The overlap scheduler powering pipelined training.

The training hot loop has three kinds of work per batch:

1. the *gather* — fancy-indexing the shuffled batch out of the source matrix
   (overlapped by :class:`~repro.datasets.stream.BatchStream`'s prefetch
   thread; the permutation is drawn before the thread starts, so prefetching
   never changes determinism);
2. the *fused dispatch* — forward + competition + statistics + EMA trace
   update, streamed through a :class:`~repro.engine.LayerEngine` workspace
   (BLAS GEMMs release the GIL);
3. the *monitoring reduction* — the per-batch mean activation entropy the
   training history records.

:class:`PipelineWorker` is a single background thread executing submitted
closures strictly in FIFO order.  :func:`train_layer_pipelined` uses it to
run batch ``k``'s entropy reduction while batch ``k+1``'s gather and fused
dispatch execute on the driver — which requires the layer's engine to be
double-buffered (``n_buffers=2``) so batch ``k``'s activations stay valid
while batch ``k+1`` computes.  Combined with the engine's stale-weights
caching (``weight_refresh_tol``), this is the pipelined training path
benchmarked in the ``pipelined_training`` section of ``BENCH_kernels.json``.

Every quantity is computed with exactly the same floating-point operations
as the serial loop, so pipelined training with ``weight_refresh_tol=0`` is
bit-for-bit identical to serial training (test-enforced).
"""

from __future__ import annotations

import os
import queue
import threading
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import BackendError

__all__ = [
    "PipelineWorker",
    "PipelineTask",
    "helper_threads_available",
    "mean_activation_entropy",
    "resolve_comm_overlap",
    "train_layer_pipelined",
]


def resolve_comm_overlap(mode: str, weight_refresh_tol: float, size: int) -> bool:
    """Resolve the ``--comm-overlap`` knob to an on/off decision.

    Communication overlap forwards batch ``k+1`` before batch ``k``'s
    reduction has been applied, i.e. it trains on one-batch-stale weights —
    which is only admissible under the stale-weights contract, so overlap
    always requires ``weight_refresh_tol > 0``.  At ``tol=0`` every mode
    degrades to the blocking schedule (bit-for-bit the historical
    behaviour).  ``"off"`` never overlaps; ``"auto"`` and ``"on"`` overlap
    whenever the tolerance permits.

    The decision deliberately does NOT depend on ``size``: the overlapped
    schedule defers *applying* each reduction by one batch, and because the
    reduced statistics of a global batch are identical for every rank
    count, keeping the schedule size-independent keeps training results
    bitwise rank-count-invariant (test-enforced across serial, thread and
    process transports).  A size-1 run has no peer skew to hide, but its
    eagerly-completing ``iallreduce`` makes the deferred apply free — the
    same floats in the same order as any multi-rank run.  ``size`` stays in
    the signature to document that invariance contract at the call sites.
    """
    if mode not in ("auto", "on", "off"):
        raise BackendError(f"comm_overlap must be 'auto', 'on' or 'off', got {mode!r}")
    del size  # deliberately unused — see docstring
    return mode != "off" and float(weight_refresh_tol) > 0.0


def helper_threads_available() -> bool:
    """Whether overlap helper threads can actually overlap on this machine.

    On a single-core machine the prefetch and pipeline-worker threads can
    only time-slice against the driver, so they add synchronisation
    overhead without overlapping any work; the pipelined entry points then
    degrade gracefully to their inline schedules.  Results are bit-for-bit
    identical either way — this predicate only picks the faster schedule.
    Override with ``REPRO_PIPELINE_THREADS=1`` (force on) or ``=0`` (force
    off) for benchmarking either schedule.
    """
    override = os.environ.get("REPRO_PIPELINE_THREADS", "").strip()
    if override in ("0", "1"):
        return override == "1"
    return (os.cpu_count() or 1) > 1


def mean_activation_entropy(activations: np.ndarray) -> float:
    """Mean per-row entropy of a batch of hidden activations.

    A cheap progress proxy for unsupervised training (lower = more
    specialised minicolumns).  This is the exact expression the serial
    training loop has always used — both paths call this helper so the
    recorded history is bit-for-bit identical with and without pipelining.
    """
    with np.errstate(divide="ignore", invalid="ignore"):
        ent = -np.sum(activations * np.log(np.clip(activations, 1e-12, 1.0)), axis=1)
    return float(np.mean(ent))


class PipelineTask:
    """Handle for one submitted closure; ``result()`` blocks until done."""

    __slots__ = ("_done", "_value", "_error")

    def __init__(self) -> None:
        self._done = threading.Event()
        self._value = None
        self._error: Optional[BaseException] = None

    def _finish(self, value, error: Optional[BaseException]) -> None:
        self._value = value
        self._error = error
        self._done.set()

    def result(self, timeout: Optional[float] = None):
        """The closure's return value (re-raises its exception)."""
        if not self._done.wait(timeout):
            raise BackendError("pipeline task did not complete in time")
        if self._error is not None:
            raise self._error
        return self._value


class PipelineWorker:
    """A single background thread running submitted closures in FIFO order.

    One worker means submitted tasks never race each other — the pipeline
    overlaps the worker's stream of tasks with the driver's, not tasks with
    tasks, which is what makes reasoning about workspace aliasing simple:
    batch ``k``'s entropy task finishes before batch ``k+1``'s starts.

    Usable as a context manager; ``close()`` drains the queue and joins the
    thread.  Submitting to a closed worker raises :class:`BackendError`.
    """

    def __init__(self, name: str = "repro-pipeline") -> None:
        self._queue: "queue.Queue" = queue.Queue()
        self._closed = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            task, fn, args = item
            try:
                task._finish(fn(*args), None)
            except BaseException as exc:  # delivered through task.result()
                task._finish(None, exc)

    def submit(self, fn: Callable, *args) -> PipelineTask:
        """Queue ``fn(*args)`` for execution; returns its :class:`PipelineTask`."""
        if self._closed:
            raise BackendError("cannot submit to a closed PipelineWorker")
        task = PipelineTask()
        self._queue.put((task, fn, args))
        return task

    def close(self, timeout: float = 10.0) -> None:
        """Drain queued tasks and stop the thread (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout)

    def __enter__(self) -> "PipelineWorker":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def train_layer_pipelined(
    layer,
    stream,
    epochs: int,
    on_epoch_end: Optional[Callable[[int, Dict[str, float]], None]] = None,
    offload: Optional[bool] = None,
    start_epoch: int = 0,
) -> List[Dict[str, float]]:
    """Run the pipelined unsupervised training loop for one hidden layer.

    Per batch the driver executes the fused dispatch (``layer.train_batch``)
    while the :class:`PipelineWorker` reduces the *previous* batch's entropy
    from its still-valid double-buffered activations, and the stream's
    prefetch thread gathers the *next* batch.  When entropy is offloaded
    the layer must be configured for double buffering
    (``layer.configure_execution(n_buffers=2)``) before calling, or the
    worker would read activations the next dispatch is overwriting.

    ``offload=None`` decides via :func:`helper_threads_available`: on a
    single-core machine the worker cannot overlap anything, so the entropy
    reduces inline (same floats, same results — only the schedule differs).

    The layer is duck-typed: ``train_batch``, ``end_epoch`` and an
    engine-backed activations view are all that is required.  Returns one
    metrics dict per epoch (``seconds``, ``mean_activation_entropy``,
    ``swaps``, ``batches``); ``on_epoch_end(epoch, metrics)`` fires on the
    driver at every epoch boundary, exactly as in the serial loop.
    """
    if epochs < 0:
        raise BackendError("epochs must be non-negative")
    if not 0 <= int(start_epoch) <= int(epochs):
        raise BackendError(f"start_epoch must be in [0, {epochs}], got {start_epoch}")
    if offload is None:
        offload = helper_threads_available()
    results: List[Dict[str, float]] = []
    worker: Optional[PipelineWorker] = None
    if offload:
        worker = PipelineWorker(name=f"repro-pipeline-{getattr(layer, 'name', 'layer')}")
    try:
        # Resumed runs re-enter at an absolute epoch index: schedules keyed
        # on the epoch number (plasticity cadence) are unaffected, and the
        # stream's RNG is expected to already sit past the completed epochs.
        for epoch in range(int(start_epoch), int(epochs)):
            start = time.perf_counter()
            entropies: List[float] = []
            pending: Optional[PipelineTask] = None
            batches = 0
            for batch in stream:
                activations = layer.train_batch(batch.x)
                if worker is not None:
                    # Collect batch k-1's entropy (it overlapped this
                    # dispatch), then hand batch k's activations to the
                    # worker so the reduction overlaps batch k+1's gather +
                    # dispatch.
                    if pending is not None:
                        entropies.append(pending.result())
                    pending = worker.submit(mean_activation_entropy, activations)
                else:
                    entropies.append(mean_activation_entropy(activations))
                batches += 1
            if pending is not None:
                entropies.append(pending.result())
            swaps = layer.end_epoch(epoch)
            metrics: Dict[str, float] = {
                "seconds": time.perf_counter() - start,
                "mean_activation_entropy": float(np.mean(entropies)) if entropies else 0.0,
                "swaps": float(swaps),
                "batches": float(batches),
            }
            results.append(metrics)
            if on_epoch_end is not None:
                on_epoch_end(epoch, dict(metrics))
    finally:
        if worker is not None:
            worker.close()
    return results
