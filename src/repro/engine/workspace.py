"""Preallocated buffers for the streaming execution engine.

A :class:`LayerWorkspace` owns every layer-sized intermediate of the fused
BCPNN training step — the masked weight product, the support/activation
matrices and the batch-statistic buffers — sized once per
``(n_input, n_hidden, batch_size)`` plan.  Backends receive the workspace
through their fused entry points and write into its buffers instead of
allocating per batch, which is what makes the hot path "stream" batches at
steady-state zero allocation (see ``benchmarks/bench_kernels.py`` for the
measured effect).

The workspace is duck-typed on purpose: backends only touch the attribute
names, so alternative workspace implementations (pinned host memory, device
buffers) can be swapped in without changing the backend code.

Two flags support the pipelined training engine (:mod:`repro.engine.plan`):

* ``masked_valid`` — set by a backend after it writes the full
  ``weights * mask`` product into ``masked_weights``; while the owning
  :class:`~repro.engine.LayerEngine` keeps it ``True`` (weights not
  refreshed, same mask object), workspace-aware backends skip the
  per-batch masked multiply entirely.
* after ``update_traces`` with a workspace, ``mean_x``/``mean_a`` hold the
  **taupdt-scaled** batch means (``kernels.ema_update`` scales them in
  place), which is what the engine's stale-weights accounting reads.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["LayerWorkspace"]


class LayerWorkspace:
    """Reusable buffers for one ``(n_input, n_hidden, batch_size)`` shape set.

    Attributes
    ----------
    masked_weights:
        ``(n_input, n_hidden)`` scratch for the ``weights * mask`` product.
    support, activations:
        ``(batch_size, n_hidden)`` buffers for the support GEMM result and
        the per-hypercolumn softmax.  Smaller (remainder) batches use leading
        row slices of the same buffers.
    mean_x, mean_a, mean_outer:
        Batch-statistic buffers consumed by the in-place trace update.
    """

    def __init__(self, n_input: int, n_hidden: int, batch_size: int) -> None:
        if n_input <= 0 or n_hidden <= 0 or batch_size <= 0:
            raise ConfigurationError(
                "workspace dimensions must be positive, got "
                f"(n_input={n_input}, n_hidden={n_hidden}, batch_size={batch_size})"
            )
        self.n_input = int(n_input)
        self.n_hidden = int(n_hidden)
        self.batch_size = int(batch_size)
        self.masked_weights = np.empty((self.n_input, self.n_hidden), dtype=np.float64)
        self.support = np.empty((self.batch_size, self.n_hidden), dtype=np.float64)
        self.activations = np.empty((self.batch_size, self.n_hidden), dtype=np.float64)
        self.mean_x = np.empty(self.n_input, dtype=np.float64)
        self.mean_a = np.empty(self.n_hidden, dtype=np.float64)
        self.mean_outer = np.empty((self.n_input, self.n_hidden), dtype=np.float64)
        #: Whether ``masked_weights`` currently holds the full weights*mask
        #: product (dense multiply or sparse scatter) for the weight/mask
        #: pair the owning engine last saw.
        self.masked_valid = False
        #: Flat scratch the sparse gather-GEMM copies active input columns
        #: into; allocated lazily on the first sparse dispatch so dense runs
        #: pay nothing (worst case one extra ``batch_size x n_input`` buffer).
        self._gather: np.ndarray = None

    def gather_scratch(self) -> np.ndarray:
        """The flat gather buffer for block-sparse dispatches (lazy)."""
        if self._gather is None:
            self._gather = np.empty(self.batch_size * self.n_input, dtype=np.float64)
        return self._gather

    def accommodates(self, n_rows: int) -> bool:
        """Whether a batch of ``n_rows`` fits in the preallocated buffers."""
        return 0 < n_rows <= self.batch_size

    def nbytes(self) -> int:
        """Total bytes held by the workspace (for memory reports)."""
        return int(
            self.masked_weights.nbytes
            + self.support.nbytes
            + self.activations.nbytes
            + self.mean_x.nbytes
            + self.mean_a.nbytes
            + self.mean_outer.nbytes
            + (self._gather.nbytes if self._gather is not None else 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LayerWorkspace(n_input={self.n_input}, n_hidden={self.n_hidden}, "
            f"batch_size={self.batch_size}, {self.nbytes() / 1e6:.2f} MB)"
        )
