"""Durable, atomic, self-validating on-disk training checkpoints.

Layers of the subsystem (each usable on its own):

* :mod:`repro.checkpoint.atomic` — crash-safe file replacement
  (temp + fsync + rename), shared with model saving and the hyperopt
  journal;
* :mod:`repro.checkpoint.manager` — the directory format: versioned
  ``.npz`` archives plus a SHA-256 manifest with ``keep_last`` rotation,
  and a loader that rejects truncated/corrupt/foreign files with a pathed
  :class:`~repro.exceptions.CheckpointError`;
* :mod:`repro.checkpoint.training` — full ``Network.fit`` state capture and
  bitwise-exact resume (see ``docs/reliability.md``).
"""

from repro.checkpoint.atomic import atomic_write_bytes, fsync_directory
from repro.checkpoint.manager import FORMAT_VERSION, MAGIC, MANIFEST_NAME, CheckpointManager
from repro.checkpoint.training import (
    ResumeState,
    TrainingCheckpointer,
    network_from_checkpoint,
    training_fingerprint,
)

__all__ = [
    "atomic_write_bytes",
    "fsync_directory",
    "CheckpointManager",
    "MAGIC",
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "ResumeState",
    "TrainingCheckpointer",
    "network_from_checkpoint",
    "training_fingerprint",
]
