"""Training-state capture/restore on top of :class:`CheckpointManager`.

One checkpoint holds everything :meth:`repro.core.network.Network.fit`
needs to fast-forward to an epoch boundary and continue bitwise-identically
(at ``weight_refresh_tol=0``) to an uninterrupted run:

* the model state of **every** layer, in the same flattened form as
  :mod:`repro.core.serialization` (so a checkpoint doubles as a loadable
  model — see :func:`network_from_checkpoint`, used by serving ``/reload``);
* the training extras serialisation deliberately drops: per-layer RNG
  states, the SGD head's momentum velocities and weights token, the BCPNN
  head's batch counter;
* the network-level RNG state — the shuffle stream: restoring it makes the
  :class:`~repro.datasets.stream.BatchStream` draw exactly the permutations
  the uninterrupted run would have drawn next;
* the recorded :class:`~repro.core.training.History`;
* a **cursor** (``phase``/``layer_index``/``epochs_done``) locating the
  boundary, plus per-unit extras for an in-progress data-parallel layer
  (its shuffle seed and completed epoch logs — the same quantities worker
  fault tolerance snapshots in memory, persisted);
* a **schedule fingerprint** guarding resumes: a checkpoint taken under
  different hyperparameters, architecture or data shape is refused with a
  pathed :class:`CheckpointError` instead of silently diverging.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.checkpoint.manager import CheckpointManager
from repro.core.heads import BCPNNClassifier, SGDClassifier
from repro.core.layers import StructuralPlasticityLayer
from repro.core.serialization import _ARRAY_KEYS, _json_default, _network_from_state
from repro.core.training import EpochResult
from repro.exceptions import CheckpointError

__all__ = ["ResumeState", "TrainingCheckpointer", "training_fingerprint", "network_from_checkpoint"]


def _rng_state(generator) -> Dict[str, object]:
    return generator.bit_generator.state


def training_fingerprint(network, schedule, x_shape) -> str:
    """Digest of everything a resumed run must agree on to stay exact."""
    layers: List[Dict[str, object]] = []
    for layer in network.hidden_layers:
        layers.append(
            {
                "kind": "StructuralPlasticityLayer",
                "n_hypercolumns": int(layer.n_hypercolumns),
                "n_minicolumns": int(layer.n_minicolumns),
                "hyperparams": layer.hyperparams.to_dict(),
            }
        )
    head = network.head
    if isinstance(head, SGDClassifier):
        head_spec: Dict[str, object] = {
            "kind": "SGDClassifier",
            "n_classes": int(head.n_classes),
            "learning_rate": float(head.learning_rate),
            "momentum": float(head.momentum),
            "weight_decay": float(head.weight_decay),
        }
    else:
        head_spec = {
            "kind": "BCPNNClassifier",
            "n_classes": int(head.n_classes),
            "taupdt": float(head.taupdt),
            "bias_gain": float(head.bias_gain),
        }
    # ``fit`` sets network.input_spec before checkpointing; fall back to the
    # first built layer's spec so the fingerprint is computable standalone.
    spec = network.input_spec
    if spec is None and network.hidden_layers:
        spec = network.hidden_layers[0].input_spec
    digest_input = {
        "schedule": schedule.to_dict(),
        "layers": layers,
        "head": head_spec,
        "input_sizes": list(spec.hypercolumn_sizes) if spec is not None else None,
        "x_shape": [int(s) for s in x_shape],
    }
    canonical = json.dumps(digest_input, sort_keys=True, default=_json_default)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _capture_network(network, fitted: bool):
    """Flatten every layer into (model header, arrays, training extras)."""
    layer_metas: List[Dict[str, object]] = []
    extras: List[Dict[str, object]] = []
    arrays: Dict[str, np.ndarray] = {}
    for index, layer in enumerate(network.layers):
        state = layer.state_dict()
        kind = state["kind"]
        meta: Dict[str, object] = {}
        for key, value in state.items():
            if key in _ARRAY_KEYS.get(kind, []):
                arrays[f"layer{index}.{key}"] = np.asarray(value)
            else:
                meta[key] = value
        layer_metas.append(meta)
        if isinstance(layer, StructuralPlasticityLayer):
            extras.append({"rng_state": _rng_state(layer._rng)})
        elif isinstance(layer, SGDClassifier):
            extras.append(
                {
                    "rng_state": _rng_state(layer._rng),
                    "weights_token": int(layer._weights_token),
                }
            )
            arrays[f"layer{index}.vel_w"] = layer._vel_w.copy()
            arrays[f"layer{index}.vel_b"] = layer._vel_b.copy()
        elif isinstance(layer, BCPNNClassifier):
            extras.append({"batches_trained": int(layer._batches_trained)})
        else:  # pragma: no cover - no other layer kinds exist
            extras.append({})
    model = {
        "format_version": 1,
        "network_name": network.name,
        "fitted": bool(fitted),
        "layers": layer_metas,
    }
    return model, arrays, extras


def _restore_network(network, meta: Dict[str, object], arrays: Dict[str, np.ndarray]) -> None:
    """In-place inverse of :func:`_capture_network` on a built network."""
    layer_metas = meta["model"]["layers"]
    extras = meta["layers_extra"]
    if len(layer_metas) != len(network.layers):
        raise CheckpointError(
            meta.get("source", "<checkpoint>"),
            f"checkpoint has {len(layer_metas)} layers, network has {len(network.layers)}",
        )
    for index, layer in enumerate(network.layers):
        state = dict(layer_metas[index])
        for key in _ARRAY_KEYS.get(state["kind"], []):
            state[key] = arrays[f"layer{index}.{key}"]
        layer.load_state_dict(state)
        extra = extras[index]
        if isinstance(layer, StructuralPlasticityLayer):
            # load_state_dict rebuilt the layer (consuming generator draws);
            # re-imposing the saved state makes the remaining draw stream —
            # competition noise, calibration jitter, plasticity — exact.
            layer._rng.bit_generator.state = extra["rng_state"]
        elif isinstance(layer, SGDClassifier):
            layer._rng.bit_generator.state = extra["rng_state"]
            layer._vel_w = np.array(arrays[f"layer{index}.vel_w"], dtype=np.float64)
            layer._vel_b = np.array(arrays[f"layer{index}.vel_b"], dtype=np.float64)
            layer._weights_token = int(extra["weights_token"])
        elif isinstance(layer, BCPNNClassifier):
            # Not part of state_dict, but it gates the first-batch marginal
            # calibration — resuming mid-head-phase must not recalibrate.
            layer._batches_trained = int(extra["batches_trained"])
    network._rng.bit_generator.state = meta["network_rng"]
    network.history.records = [
        EpochResult(
            phase=str(r["phase"]),
            layer_name=str(r["layer_name"]),
            epoch=int(r["epoch"]),
            duration_seconds=float(r["duration_seconds"]),
            metrics=dict(r["metrics"]),
        )
        for r in meta["history"]
    ]


@dataclass
class ResumeState:
    """Where a restored run should re-enter training."""

    path: Path
    cursor: Dict[str, object]
    unit: Optional[Dict[str, object]]
    step: int


class TrainingCheckpointer:
    """Epoch-boundary checkpointing for one ``Network.fit`` call.

    Saves are **write-overlapped**: the state snapshot, npz serialisation
    and checksum happen synchronously (the bytes are immutable once
    rendered), but the durable part — fsync + rename + manifest commit,
    whose latency is dominated by journal flushes the training thread
    cannot influence — runs on a background thread, overlapped with the
    next epoch's compute.  At most one commit is in flight: the next save
    (and ``load_for_resume``) joins it first, so manifest access stays
    serialised and a commit failure surfaces as its :class:`CheckpointError`
    at the following boundary.  ``Network.fit`` calls :meth:`flush` before
    returning, so on return every requested checkpoint is durable; a crash
    mid-commit costs at most the newest snapshot — the manifest still names
    the previous one (the store's normal crash contract).
    """

    def __init__(
        self,
        network,
        schedule,
        directory: Union[str, Path],
        x_shape,
        every: int = 1,
        keep_last: int = 3,
    ) -> None:
        if int(every) < 1:
            raise CheckpointError(directory, "checkpoint_every must be >= 1")
        self.network = network
        self.schedule = schedule
        self.manager = CheckpointManager(directory, keep_last=keep_last)
        self.every = int(every)
        self.fingerprint = training_fingerprint(network, schedule, x_shape)
        self._step = 0
        self._pending: Optional[threading.Thread] = None
        self._pending_error: List[BaseException] = []

    # ----------------------------------------------------------------- save
    def save(
        self, cursor: Dict[str, object], unit: Optional[Dict[str, object]] = None
    ) -> Path:
        """Persist the network + cursor at the current epoch boundary."""
        self.flush()
        self._step += 1
        fitted = cursor.get("phase") == "done" or self.network.is_fitted
        model, arrays, extras = _capture_network(self.network, fitted)
        meta = {
            "model": model,
            "layers_extra": extras,
            "network_rng": _rng_state(self.network._rng),
            "history": [
                {
                    "phase": r.phase,
                    "layer_name": r.layer_name,
                    "epoch": r.epoch,
                    "duration_seconds": r.duration_seconds,
                    "metrics": dict(r.metrics),
                }
                for r in self.network.history.records
            ],
            "cursor": dict(cursor),
            "unit": dict(unit) if unit is not None else None,
            "fingerprint": self.fingerprint,
        }
        # Round-trip numpy scalars hiding in metrics/logs into plain JSON.
        meta = json.loads(json.dumps(meta, default=_json_default))
        name, data = self.manager.serialise(arrays, meta, step=self._step)

        def _commit(step: int = self._step) -> None:
            try:
                self.manager.commit(name, data, step)
            except BaseException as exc:  # surfaced at the next flush/save
                self._pending_error.append(exc)

        self._pending = threading.Thread(
            target=_commit, name="repro-checkpoint-writer", daemon=True
        )
        self._pending.start()
        return self.manager.directory / name

    def flush(self, suppress: bool = False) -> None:
        """Join the in-flight commit; re-raise its failure unless asked not to.

        ``suppress=True`` is for exception paths — joining must not mask the
        exception already propagating through ``fit``.
        """
        pending = self._pending
        if pending is not None:
            pending.join()
            self._pending = None
        if self._pending_error:
            error = self._pending_error.pop()
            self._pending_error.clear()
            if not suppress:
                raise error

    def maybe_save(
        self, cursor: Dict[str, object], unit: Optional[Dict[str, object]] = None
    ) -> Optional[Path]:
        """Save if the boundary falls on the ``checkpoint_every`` cadence.

        Unit-completion boundaries (``epochs_done == 0``, the cursor already
        advanced to the next unit) always save — they are the states that
        keep resume from replaying a finished unit.
        """
        if int(cursor.get("epochs_done", 0)) % self.every != 0:
            return None
        return self.save(cursor, unit)

    # --------------------------------------------------------------- resume
    def load_for_resume(self) -> Optional[ResumeState]:
        """Restore the newest checkpoint into the network, if any.

        Returns ``None`` when the directory holds no checkpoint yet (a
        ``--resume`` run that crashed before its first boundary simply
        starts fresh).  A fingerprint mismatch — resuming under changed
        hyperparameters, architecture or data shape — raises a pathed
        :class:`CheckpointError`.
        """
        self.flush()
        loaded = self.manager.load_latest()
        if loaded is None:
            return None
        path, meta, arrays = loaded
        if meta.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                path,
                "schedule fingerprint mismatch — this checkpoint was written "
                "under different hyperparameters, architecture or data; "
                "refusing to resume",
            )
        _restore_network(self.network, meta, arrays)
        self._step = int(meta.get("step", 0))
        return ResumeState(
            path=path,
            cursor=dict(meta["cursor"]),
            unit=dict(meta["unit"]) if meta.get("unit") is not None else None,
            step=self._step,
        )


def network_from_checkpoint(path: Union[str, Path]):
    """Reconstruct a :class:`~repro.core.network.Network` from a checkpoint.

    The archive's checksum, magic and version are validated through
    :class:`CheckpointManager` first — serving's ``/reload`` calls this, so
    a corrupt checkpoint can never be swapped in.
    """
    path = Path(path)
    manager = CheckpointManager(path.parent)
    meta, arrays = manager.load(path)
    if "model" not in meta:
        raise CheckpointError(path, "checkpoint has no model record")
    return _network_from_state(meta["model"], arrays, source=str(path))
