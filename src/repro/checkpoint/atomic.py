"""Durable atomic file writes (temp + fsync + rename + directory fsync).

Every on-disk artifact the checkpoint subsystem produces — checkpoint
archives, manifests, saved models, hyperopt journal segments — goes through
:func:`atomic_write_bytes`, so a crash at *any* instant leaves either the
complete old file or the complete new file, never a torn one:

1. the payload is written to a same-directory temp file,
2. the temp file is flushed and ``fsync``'d (durability),
3. ``os.replace`` atomically installs it under the final name,
4. the directory entry is ``fsync``'d so the rename itself is durable.

The :mod:`repro.faults` sites ``checkpoint.fsync`` and
``checkpoint.short_write`` hook steps 2 and 1 respectively, letting the
chaos tests prove the old file survives a failed write.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

from repro import faults
from repro.exceptions import CheckpointError

__all__ = ["atomic_write_bytes", "fsync_directory"]


def fsync_directory(directory: Union[str, Path]) -> None:
    """Flush a directory entry to disk (no-op where unsupported)."""
    try:
        fd = os.open(str(directory), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Union[str, Path], data: bytes, durable: bool = True) -> Path:
    """Atomically replace ``path`` with ``data``; returns the final path.

    On any failure the target file is left exactly as it was (the temp file
    is cleaned up best-effort) and a pathed :class:`CheckpointError` is
    raised.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            if faults.fault_point("checkpoint.short_write", path=str(path)) is not None:
                handle.write(data[: max(1, len(data) // 2)])
                raise OSError("injected short write")
            handle.write(data)
            handle.flush()
            if durable:
                if faults.fault_point("checkpoint.fsync", path=str(path)) is not None:
                    raise OSError("injected fsync failure")
                os.fsync(handle.fileno())
        os.replace(tmp, path)
    except OSError as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise CheckpointError(path, f"atomic write failed: {exc}") from exc
    if durable:
        fsync_directory(path.parent)
    return path
