"""On-disk checkpoint store: versioned archives + checksummed manifest.

A checkpoint directory managed by :class:`CheckpointManager` contains::

    ckpt-000004.npz     one archive per retained checkpoint (atomic writes)
    MANIFEST.json       the directory's source of truth (atomic writes)

Each archive is a ``.npz`` holding the payload arrays plus one ``meta``
array — the UTF-8 JSON metadata, always carrying the format ``magic`` and
``version`` so foreign files are rejected before any array is touched.  The
manifest records, per checkpoint, the file name, its SHA-256 digest, byte
size and step counter; the loader re-hashes the archive and refuses
mismatches with a pathed :class:`CheckpointError` — a truncated, corrupt or
foreign file can never be loaded.

Write ordering gives crash safety without a WAL: the archive is made
durable *before* the manifest references it, so a crash between the two
leaves an orphan archive (ignored, garbage-collected by rotation) and the
previous manifest still points at the last good checkpoint.
"""

from __future__ import annotations

import hashlib
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro import faults
from repro.checkpoint.atomic import atomic_write_bytes
from repro.exceptions import CheckpointError, ConfigurationError

__all__ = ["CheckpointManager", "MAGIC", "FORMAT_VERSION", "MANIFEST_NAME"]

MAGIC = "repro-checkpoint"
FORMAT_VERSION = 1
MANIFEST_NAME = "MANIFEST.json"


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class CheckpointManager:
    """Durable rotation-managed checkpoint store for one directory."""

    def __init__(self, directory: Union[str, Path], keep_last: int = 3) -> None:
        if int(keep_last) < 1:
            raise ConfigurationError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.keep_last = int(keep_last)

    # ------------------------------------------------------------- manifest
    @property
    def manifest_path(self) -> Path:
        return self.directory / MANIFEST_NAME

    def read_manifest(self) -> Dict[str, object]:
        """The parsed manifest; an empty one if the directory is fresh."""
        path = self.manifest_path
        if not path.is_file():
            return {"magic": MAGIC, "version": FORMAT_VERSION, "checkpoints": []}
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(path, f"unreadable manifest: {exc}") from exc
        if not isinstance(manifest, dict) or manifest.get("magic") != MAGIC:
            raise CheckpointError(path, "not a repro checkpoint manifest")
        if manifest.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                path, f"unsupported manifest version {manifest.get('version')!r}"
            )
        entries = manifest.get("checkpoints")
        if not isinstance(entries, list):
            raise CheckpointError(path, "manifest has no checkpoint list")
        return manifest

    def _write_manifest(self, manifest: Dict[str, object]) -> None:
        data = json.dumps(manifest, indent=2, sort_keys=True).encode("utf-8")
        atomic_write_bytes(self.manifest_path, data)

    # ----------------------------------------------------------------- save
    def serialise(
        self,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, object],
        step: int,
    ) -> Tuple[str, bytes]:
        """Render one checkpoint into ``(archive name, npz bytes)``.

        ``meta`` must be JSON-serialisable; ``magic``/``version``/``step``
        are stamped here.  The returned bytes are an immutable snapshot —
        :meth:`commit` can run on another thread while the caller mutates
        the source arrays.
        """
        if "meta" in arrays:
            raise CheckpointError(self.directory, "'meta' is a reserved array name")
        full_meta = dict(meta)
        full_meta["magic"] = MAGIC
        full_meta["version"] = FORMAT_VERSION
        full_meta["step"] = int(step)
        payload = dict(arrays)
        payload["meta"] = np.frombuffer(
            json.dumps(full_meta).encode("utf-8"), dtype=np.uint8
        )
        buffer = io.BytesIO()
        # Uncompressed on purpose: zlib over megabytes of float64 costs more
        # wall-clock per epoch boundary than the training epoch can absorb
        # (the CI gate pins total overhead at <= 1.05x), while the npz
        # container + manifest checksum provide the integrity guarantees.
        np.savez(buffer, **payload)
        return f"ckpt-{int(step):06d}.npz", buffer.getvalue()

    def commit(self, name: str, data: bytes, step: int) -> Path:
        """Durably write serialised bytes and rotate; returns the path.

        The archive is fsync'd before the manifest names it, so an
        interrupted commit never invalidates the previous state.
        """
        path = atomic_write_bytes(self.directory / name, data)

        manifest = self.read_manifest()
        entries: List[Dict[str, object]] = [
            e for e in manifest["checkpoints"] if e.get("file") != name
        ]
        entries.append(
            {"file": name, "sha256": _sha256(data), "bytes": len(data), "step": int(step)}
        )
        entries.sort(key=lambda e: int(e.get("step", 0)))
        dropped = entries[: -self.keep_last] if len(entries) > self.keep_last else []
        manifest["checkpoints"] = entries[len(dropped):]
        manifest["latest"] = name
        self._write_manifest(manifest)
        for entry in dropped:
            try:
                (self.directory / str(entry["file"])).unlink()
            except OSError:  # pragma: no cover - rotation is best-effort
                pass
        return path

    def save(
        self,
        arrays: Dict[str, np.ndarray],
        meta: Dict[str, object],
        step: int,
    ) -> Path:
        """:meth:`serialise` + :meth:`commit` in one synchronous call."""
        name, data = self.serialise(arrays, meta, step)
        return self.commit(name, data, step)

    # ----------------------------------------------------------------- load
    def load(self, path: Union[str, Path]) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """Validate + parse one archive; returns ``(meta, arrays)``.

        Every failure mode — missing file, file absent from the manifest,
        checksum mismatch, truncated/corrupt npz, foreign magic, unsupported
        version — raises a pathed :class:`CheckpointError`.
        """
        path = Path(path)
        if not path.is_file():
            raise CheckpointError(path, "checkpoint file not found")
        manifest = CheckpointManager(path.parent, keep_last=self.keep_last).read_manifest()
        entry = next(
            (e for e in manifest["checkpoints"] if e.get("file") == path.name), None
        )
        if entry is None:
            raise CheckpointError(
                path, "not recorded in the checkpoint manifest (orphan or foreign file)"
            )
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CheckpointError(path, f"unreadable checkpoint: {exc}") from exc
        plan = faults.active_plan()
        if plan is not None and plan.match("checkpoint.corrupt_read", {"path": str(path)}):
            data = plan.corrupt(data)
        if len(data) != int(entry.get("bytes", -1)) or _sha256(data) != entry.get("sha256"):
            raise CheckpointError(
                path, "checksum mismatch (truncated or corrupt checkpoint)"
            )
        try:
            with np.load(io.BytesIO(data), allow_pickle=False) as archive:
                if "meta" not in archive.files:
                    raise CheckpointError(path, "archive has no metadata record")
                meta = json.loads(bytes(archive["meta"].tobytes()).decode("utf-8"))
                arrays = {key: archive[key] for key in archive.files if key != "meta"}
        except CheckpointError:
            raise
        except Exception as exc:  # zipfile/np/json parse errors on valid-checksum data
            raise CheckpointError(path, f"unparseable checkpoint: {exc}") from exc
        if meta.get("magic") != MAGIC:
            raise CheckpointError(path, "not a repro checkpoint (bad magic)")
        if meta.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                path, f"unsupported checkpoint version {meta.get('version')!r}"
            )
        return meta, arrays

    def latest_path(self) -> Optional[Path]:
        """Path of the newest manifest-recorded checkpoint, or ``None``."""
        if not self.manifest_path.is_file():
            return None
        manifest = self.read_manifest()
        latest = manifest.get("latest")
        if not latest:
            return None
        return self.directory / str(latest)

    def load_latest(
        self,
    ) -> Optional[Tuple[Path, Dict[str, object], Dict[str, np.ndarray]]]:
        """Load the newest checkpoint; ``None`` when the store is empty."""
        path = self.latest_path()
        if path is None:
            return None
        meta, arrays = self.load(path)
        return path, meta, arrays
