"""Async request coalescing: many small requests, one engine dispatch.

The request-facing serving path receives many small concurrent JSON
requests (often a single row each), while the execution engine is fastest
when it dispatches *micro-batches* through one preallocated
:class:`~repro.engine.LayerWorkspace` — the same fused/sparse kernels the
bulk :class:`~repro.serving.StreamingPredictor` path uses.
:class:`MicroBatcher` bridges the two: concurrent ``submit`` calls park on
an :mod:`asyncio` queue, a single flush task coalesces them into one
feature matrix, and the batch is dispatched once — flushing on whichever
comes first, ``batch_size`` accumulated rows or the ``deadline`` measured
from the oldest queued request.

Admission control and backpressure are explicit:

* a bounded queue (``max_queue_rows``): a ``submit`` that would overflow it
  raises :class:`QueueFullError` immediately (the HTTP front end maps this
  to ``503`` + ``Retry-After``) instead of letting latency grow without
  bound;
* a per-request deadline (``request_timeout``): a request that has not
  been answered in time raises :class:`DeadlineExceededError` (mapped to
  ``504``) and its slot is discarded — the dispatch result of an abandoned
  request is simply dropped;
* graceful drain (:meth:`MicroBatcher.drain`): no new admissions, every
  queued request is flushed and answered, then the dispatch executor shuts
  down.

Dispatches run on a dedicated single worker thread, so batch ``k+1`` can
coalesce on the event loop while batch ``k`` computes, and two batches
never dispatch concurrently into the same predictor workspaces.
"""

from __future__ import annotations

import asyncio
import math
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.exceptions import ReproError
from repro.utils.validation import check_positive_int

__all__ = [
    "BatchResult",
    "DeadlineExceededError",
    "DispatchError",
    "MicroBatcher",
    "QueueFullError",
    "RequestSlice",
    "ServingClosedError",
]


class QueueFullError(ReproError, RuntimeError):
    """Raised when admitting a request would overflow the bounded queue.

    ``retry_after`` is the suggested client back-off in whole seconds
    (at least 1) — the HTTP front end forwards it as a ``Retry-After``
    header on the ``503`` response.
    """

    def __init__(self, message: str, retry_after: int = 1) -> None:
        super().__init__(message)
        self.retry_after = max(1, int(retry_after))


class DeadlineExceededError(ReproError, RuntimeError):
    """Raised when a request's per-request deadline expires before dispatch."""


class DispatchError(ReproError, RuntimeError):
    """Raised to every waiter of a micro-batch whose dispatch failed."""


class ServingClosedError(ReproError, RuntimeError):
    """Raised when submitting to a draining or closed batcher."""


@dataclass(frozen=True)
class BatchResult:
    """One micro-batch dispatch outcome, produced by the dispatch callable.

    Attributes
    ----------
    predictions:
        ``(n_rows,)`` hard class predictions for the whole micro-batch.
    probabilities:
        ``(n_rows, n_classes)`` class probabilities, row-aligned with
        ``predictions``.
    model_version:
        The serving model version the batch was computed with — captured
        atomically per batch, so a hot-swap never splits one micro-batch
        across two models.
    """

    predictions: np.ndarray
    probabilities: np.ndarray
    model_version: int


@dataclass(frozen=True)
class RequestSlice:
    """One request's share of a dispatched micro-batch.

    Attributes
    ----------
    predictions / probabilities:
        This request's row slice of the batch outputs.
    model_version:
        Version of the model that served the batch.
    batch_rows:
        Total rows in the micro-batch this request was coalesced into
        (``>= len(predictions)``) — observability for the batching gain.
    """

    predictions: np.ndarray
    probabilities: np.ndarray
    model_version: int
    batch_rows: int


@dataclass
class _Pending:
    rows: np.ndarray
    future: "asyncio.Future[RequestSlice]"
    enqueued_at: float


@dataclass
class BatcherStats:
    """Thread-compatible counters the flush loop maintains (loop-owned)."""

    requests: int = 0
    rows: int = 0
    batches: int = 0
    batch_rows: int = 0
    flush_full: int = 0
    flush_deadline: int = 0
    flush_drain: int = 0
    rejected: int = 0
    timeouts: int = 0
    dispatch_errors: int = 0
    fills: Deque[int] = field(default_factory=lambda: deque(maxlen=1024))

    def as_dict(self) -> Dict[str, float]:
        mean_fill = (self.batch_rows / self.batches) if self.batches else 0.0
        return {
            "requests": self.requests,
            "rows": self.rows,
            "batches": self.batches,
            "mean_batch_rows": mean_fill,
            "flush_full": self.flush_full,
            "flush_deadline": self.flush_deadline,
            "flush_drain": self.flush_drain,
            "rejected": self.rejected,
            "timeouts": self.timeouts,
            "dispatch_errors": self.dispatch_errors,
        }


class MicroBatcher:
    """Coalesce concurrent row requests into micro-batched engine dispatches.

    Parameters
    ----------
    dispatch:
        ``dispatch(matrix) -> BatchResult`` — called on the dispatch worker
        thread with the coalesced ``(n_rows, n_features)`` matrix.  Must be
        self-consistent under concurrent model swaps (the server's
        :class:`~repro.serving.server.ModelRunner` snapshots predictor and
        version under one lock).
    batch_size:
        Flush as soon as at least this many rows are queued.
    deadline:
        Seconds after the *oldest* queued request at which the batch is
        flushed regardless of fill — bounds the latency a straggler pays
        for coalescing.
    max_queue_rows:
        Bound on queued (not yet dispatched) rows; admission beyond it
        raises :class:`QueueFullError`.
    request_timeout:
        Optional per-request deadline in seconds measured from ``submit``;
        expiry raises :class:`DeadlineExceededError` to that caller only.

    Notes
    -----
    All public coroutine methods must be called from one event loop; the
    dispatch callable is the only code that runs off-loop.
    """

    def __init__(
        self,
        dispatch: Callable[[np.ndarray], BatchResult],
        batch_size: int = 64,
        deadline: float = 0.005,
        max_queue_rows: int = 4096,
        request_timeout: Optional[float] = None,
    ) -> None:
        self._dispatch = dispatch
        self.batch_size = check_positive_int(batch_size, "batch_size")
        if deadline <= 0:
            raise ValueError("deadline must be positive (seconds)")
        self.deadline = float(deadline)
        self.max_queue_rows = check_positive_int(max_queue_rows, "max_queue_rows")
        if request_timeout is not None and request_timeout <= 0:
            raise ValueError("request_timeout must be positive (seconds)")
        self.request_timeout = request_timeout
        self.stats = BatcherStats()
        self._pending: Deque[_Pending] = deque()
        self._pending_rows = 0
        self._wakeup: Optional[asyncio.Event] = None
        self._closed = False
        self._flush_task: Optional[asyncio.Task] = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-dispatch"
        )

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Start the flush loop on the current event loop (idempotent)."""
        if self._flush_task is None:
            self._wakeup = asyncio.Event()
            self._flush_task = asyncio.create_task(self._flush_loop(), name="repro-serve-flush")

    async def drain(self) -> None:
        """Stop admissions, flush and answer everything queued, shut down."""
        self._closed = True
        if self._flush_task is not None:
            self._wakeup.set()
            await self._flush_task
            self._flush_task = None
        self._executor.shutdown(wait=True)

    @property
    def queued_rows(self) -> int:
        """Rows currently admitted but not yet dispatched (a gauge)."""
        return self._pending_rows

    # ------------------------------------------------------------ admission
    async def submit(self, rows: np.ndarray) -> RequestSlice:
        """Queue ``rows`` for the next micro-batch; await this request's slice.

        Parameters
        ----------
        rows:
            ``(n_rows, n_features)`` float matrix (``n_rows >= 1``).

        Returns
        -------
        RequestSlice
            This request's row-aligned predictions/probabilities plus the
            serving model version and the fill of the batch that carried it.

        Raises
        ------
        ServingClosedError
            The batcher is draining or was never started.
        QueueFullError
            Admission would overflow ``max_queue_rows``.
        DeadlineExceededError
            ``request_timeout`` expired before the dispatch answered.
        DispatchError
            The micro-batch dispatch itself raised.
        """
        if self._closed or self._flush_task is None:
            raise ServingClosedError("the serving queue is not accepting requests")
        n = int(rows.shape[0])
        if self._pending_rows + n > self.max_queue_rows:
            self.stats.rejected += 1
            # Suggest retrying after roughly one queue's worth of batches.
            backlog_batches = math.ceil((self._pending_rows + n) / self.batch_size)
            raise QueueFullError(
                f"serving queue is full ({self._pending_rows} rows queued, "
                f"bound {self.max_queue_rows}); retry later",
                retry_after=math.ceil(backlog_batches * self.deadline),
            )
        loop = asyncio.get_running_loop()
        item = _Pending(rows, loop.create_future(), time.monotonic())
        self._pending.append(item)
        self._pending_rows += n
        self.stats.requests += 1
        self.stats.rows += n
        self._wakeup.set()
        if self.request_timeout is None:
            return await item.future
        try:
            return await asyncio.wait_for(item.future, timeout=self.request_timeout)
        except asyncio.TimeoutError:
            # wait_for cancelled the future; the flush loop will notice the
            # abandoned slot (future.done()) and drop its rows on the floor.
            self.stats.timeouts += 1
            raise DeadlineExceededError(
                f"request not served within {self.request_timeout:g}s"
            ) from None

    # ------------------------------------------------------------ flushing
    async def _wait_for_flush_condition(self) -> str:
        """Block until the current queue should flush; returns the reason."""
        while self._pending_rows < self.batch_size:
            if self._closed:
                return "drain"
            head = self._pending[0]
            remaining = self.deadline - (time.monotonic() - head.enqueued_at)
            if remaining <= 0:
                return "deadline"
            self._wakeup.clear()
            try:
                await asyncio.wait_for(self._wakeup.wait(), timeout=remaining)
            except asyncio.TimeoutError:
                return "deadline"
        return "full"

    def _collect(self) -> List[_Pending]:
        """Pop whole queued requests up to ``batch_size`` rows (at least one)."""
        batch: List[_Pending] = []
        taken = 0
        while self._pending:
            item = self._pending[0]
            n = int(item.rows.shape[0])
            if batch and taken + n > self.batch_size:
                break
            self._pending.popleft()
            self._pending_rows -= n
            batch.append(item)
            taken += n
        return batch

    async def _flush_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            while not self._pending:
                if self._closed:
                    return
                self._wakeup.clear()
                await self._wakeup.wait()
            reason = await self._wait_for_flush_condition()
            batch = self._collect()
            live = [item for item in batch if not item.future.done()]
            if not live:
                continue
            matrix = (
                live[0].rows
                if len(live) == 1
                else np.concatenate([item.rows for item in live], axis=0)
            )
            try:
                result = await loop.run_in_executor(self._executor, self._dispatch, matrix)
            except Exception as exc:  # noqa: BLE001 - forwarded to every waiter
                self.stats.dispatch_errors += 1
                error = DispatchError(f"micro-batch dispatch failed: {exc}")
                error.__cause__ = exc
                for item in live:
                    if not item.future.done():
                        item.future.set_exception(error)
                continue
            self.stats.batches += 1
            self.stats.batch_rows += int(matrix.shape[0])
            self.stats.fills.append(int(matrix.shape[0]))
            if reason == "full":
                self.stats.flush_full += 1
            elif reason == "deadline":
                self.stats.flush_deadline += 1
            else:
                self.stats.flush_drain += 1
            offset = 0
            for item in live:
                n = int(item.rows.shape[0])
                if not item.future.done():
                    item.future.set_result(
                        RequestSlice(
                            predictions=result.predictions[offset : offset + n],
                            probabilities=result.probabilities[offset : offset + n],
                            model_version=result.model_version,
                            batch_rows=int(matrix.shape[0]),
                        )
                    )
                offset += n
