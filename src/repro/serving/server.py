"""Request-facing online serving: stdlib HTTP/JSON over the micro-batcher.

This module turns the offline bulk path (:class:`StreamingPredictor`) into
a **request-facing system**: an :mod:`asyncio` HTTP/1.1 endpoint whose
concurrent ``POST /predict`` requests are coalesced by
:class:`~repro.serving.batcher.MicroBatcher` into micro-batches and
dispatched through a cached predictor's preallocated engine workspaces —
per-request cost amortises into the same fused/sparse kernels the bulk
path uses.  Everything is standard library (``asyncio`` streams + JSON);
there is no web-framework dependency to install.

Endpoints
---------
``POST /predict``
    Body ``{"rows": [[...], ...], "proba": false}``.  Replies
    ``{"predictions": [...], "model_version": N, "batch_rows": K}``
    (plus ``"probabilities"`` when ``proba`` is true).  Backpressure is
    explicit: a full queue replies ``503`` with ``Retry-After``; a request
    older than the per-request deadline replies ``504``.  Optional
    ``"backend"`` and ``"sparse"`` keys override the execution choice for
    that request alone (validated against the backend registry / the
    ``auto``/``on``/``off`` modes — unknown names reply ``400``); override
    requests run on a cached per-override predictor and skip the
    micro-batcher, so they never perturb default-path coalescing.
``GET /healthz``
    ``200 {"status": "ok", ...}`` while serving, ``503`` while draining.
``GET /metrics``
    Counters, queue gauge and latency percentiles as JSON.
``POST /reload``
    Zero-downtime model hot-swap: loads ``{"model": PATH}`` (default: the
    path the server started with) and atomically swaps the predictor
    *between* micro-batches — an in-flight batch finishes on the version it
    started with, and every response reports the version that served it.

The hot-swap rides the serving refresh machinery from the bulk path: a
swap installs a freshly built :class:`StreamingPredictor` (new engines and
workspaces), so no cached weights*mask product or sparse pack of the old
model can leak into the new version, and the old version's in-flight batch
keeps its own workspaces until it completes.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.exceptions import DataError, ReproError
from repro.serving.batcher import (
    BatchResult,
    DeadlineExceededError,
    DispatchError,
    MicroBatcher,
    QueueFullError,
    ServingClosedError,
)
from repro.serving.predictor import StreamingPredictor

__all__ = ["ModelRunner", "PredictionServer", "ServerThread", "ServingMetrics"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Upper bound on an accepted request body; a request-facing endpoint is for
#: micro-batches, not bulk uploads (use ``repro predict`` for those).
MAX_BODY_BYTES = 8 * 1024 * 1024


class ModelRunner:
    """The servable model: a network plus its cached streaming predictor.

    Owns the one mutable piece of serving state — *which* model answers —
    behind a lock, so micro-batch dispatches and hot-swaps interleave
    safely:

    * :meth:`run_batch` snapshots ``(predictor, version)`` and computes the
      whole batch under the lock, so a swap can never land mid-batch;
    * :meth:`swap` builds the replacement predictor *outside* the lock
      (workspace allocation is the slow part) and only the pointer flip is
      serialised — the actual downtime is nanoseconds.

    Parameters
    ----------
    network:
        A fitted :class:`~repro.core.network.Network` (built head).
    batch_size:
        Engine workspace rows — the micro-batcher's ``batch_size`` should
        not exceed it (a larger micro-batch still works; the predictor
        grows its workspaces once).
    backend:
        Optional backend name/instance forced onto the whole stack
        (default: each layer's own resolved backend).
    comm:
        Optional :class:`repro.comm.Communicator` or transport spec string
        (``"process:4"``, ``"tcp://host:port?ranks=8"``): serving batches
        are row-sharded across the ranks (see
        :class:`StreamingPredictor`).  A spec string is resolved once here
        and released by :meth:`close`; an instance stays caller-owned.

    Per-request overrides
    ---------------------
    ``POST /predict`` may name a ``"backend"`` and/or ``"sparse"`` mode for
    that request alone.  The runner keeps one cached predictor per distinct
    override tuple (workspaces are the expensive part), invalidated on
    every :meth:`swap`.  A sparse override rebuilds its network from the
    serialized blob first, because ``bind_sparse(force=True)`` mutates the
    layer spec in place and must not leak into the default path.

    Raises
    ------
    NotFittedError
        If the network's head (or any hidden layer) is not built.
    """

    def __init__(self, network, batch_size: int = 64, backend=None, comm=None) -> None:
        from repro.comm import resolve_comm

        self._lock = threading.Lock()
        self._backend = backend
        self._batch_size = int(batch_size)
        self._comm = resolve_comm(comm) if isinstance(comm, str) else comm
        self._owns_comm = isinstance(comm, str) and self._comm is not None
        self.version = 0
        self.network = None
        self.n_features = 0
        self._predictor: Optional[StreamingPredictor] = None
        self._override_predictors: Dict[
            Tuple[Optional[str], Optional[str]], StreamingPredictor
        ] = {}
        self.swap(network)

    def _feature_width(self, network) -> int:
        if network.hidden_layers:
            spec = network.hidden_layers[0].input_spec
            if spec is not None:
                return int(spec.n_units)
        spec = getattr(network, "input_spec", None)
        if spec is not None:
            return int(spec.n_units)
        raise DataError("cannot determine the model's input width (no built input spec)")

    def swap(self, network) -> int:
        """Atomically make ``network`` the serving model; returns the new version.

        The replacement predictor (engines + workspaces) is built before
        the lock is taken; in-flight batches finish on the old predictor.
        On *any* failure building the replacement the old model keeps
        serving untouched.
        """
        predictor = StreamingPredictor(
            network, batch_size=self._batch_size, backend=self._backend, comm=self._comm
        )
        width = self._feature_width(network)
        with self._lock:
            self.network = network
            self._predictor = predictor
            self.n_features = width
            self._override_predictors.clear()
            self.version += 1
            return self.version

    def _override_predictor(
        self, backend: Optional[str], sparse: Optional[str]
    ) -> StreamingPredictor:
        """The cached predictor for one ``(backend, sparse)`` override tuple.

        Called under :attr:`_lock` (the build blocks a concurrent swap, like
        any other dispatch).  Backend-only overrides share the serving
        network — the backend is a per-predictor execution choice; sparse
        overrides clone it through the serialization blob first because
        ``bind_sparse(force=True)`` rewrites the layer spec in place.
        """
        key = (backend, sparse)
        predictor = self._override_predictors.get(key)
        if predictor is None:
            network = self.network
            if sparse is not None:
                from repro.core import network_from_bytes, network_to_bytes

                network = network_from_bytes(network_to_bytes(self.network))
                for layer in network.hidden_layers:
                    if hasattr(layer, "bind_sparse"):
                        layer.bind_sparse(sparse, force=True)
            predictor = StreamingPredictor(
                network,
                batch_size=self._batch_size,
                backend=backend if backend is not None else self._backend,
                comm=self._comm,
            )
            self._override_predictors[key] = predictor
        return predictor

    def run_batch(
        self,
        matrix: np.ndarray,
        backend: Optional[str] = None,
        sparse: Optional[str] = None,
    ) -> BatchResult:
        """One micro-batch through the cached predictor (dispatch callable).

        Runs on the batcher's dispatch thread.  Probabilities are computed
        once (one fused forward + head pass through the preallocated
        workspaces) and the hard predictions derived by row-argmax, so a
        mixed batch of ``proba`` and plain requests costs one dispatch.
        ``backend``/``sparse`` select a per-request override predictor
        (validated names only — see :meth:`_override_predictor`).
        """
        with self._lock:
            if backend is None and sparse is None:
                predictor = self._predictor
            else:
                predictor = self._override_predictor(backend, sparse)
            proba = predictor.predict_proba_stream(matrix)
            version = self.version
        return BatchResult(
            predictions=np.argmax(proba, axis=1),
            probabilities=proba,
            model_version=version,
        )

    def close(self) -> None:
        """Release the communicator when this runner resolved it from a spec."""
        if self._owns_comm and self._comm is not None:
            self._comm.close()
            self._comm = None
            self._owns_comm = False


class ServingMetrics:
    """Latency/outcome accounting for the HTTP front end (thread-safe)."""

    def __init__(self, reservoir: int = 4096) -> None:
        self._lock = threading.Lock()
        self._latencies: Deque[float] = deque(maxlen=reservoir)
        self.requests: Dict[str, int] = {}
        self.statuses: Dict[int, int] = {}
        self.started_at = time.time()

    def observe(self, endpoint: str, status: int, latency: Optional[float] = None) -> None:
        with self._lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1
            self.statuses[status] = self.statuses.get(status, 0) + 1
            if latency is not None:
                self._latencies.append(latency)

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            latencies = np.asarray(self._latencies, dtype=np.float64)
            out: Dict[str, object] = {
                "requests_by_endpoint": dict(self.requests),
                "responses_by_status": {str(k): v for k, v in sorted(self.statuses.items())},
                "uptime_seconds": time.time() - self.started_at,
            }
        if latencies.size:
            out["predict_latency_ms"] = {
                "count": int(latencies.size),
                "p50": float(np.percentile(latencies, 50) * 1e3),
                "p90": float(np.percentile(latencies, 90) * 1e3),
                "p99": float(np.percentile(latencies, 99) * 1e3),
                "max": float(latencies.max() * 1e3),
            }
        return out


class _Request:
    __slots__ = ("method", "path", "headers", "body", "keep_alive")

    def __init__(self, method: str, path: str, headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        connection = headers.get("connection", "").lower()
        self.keep_alive = connection != "close"


class _BadRequest(ReproError, ValueError):
    """Malformed request (parse/validation failure) — mapped to 400/413."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class PredictionServer:
    """The asyncio HTTP/JSON serving endpoint (``repro serve``).

    Parameters
    ----------
    runner:
        The :class:`ModelRunner` that answers batches (and hot-swaps).
    host / port:
        Bind address; ``port=0`` binds an ephemeral port (read it back
        from :attr:`port` after :meth:`start` — tests and the latency
        benchmark rely on this).
    batch_size:
        Micro-batch flush threshold in rows.
    batch_deadline:
        Seconds after the oldest queued request at which a partial batch
        flushes anyway (the latency a straggler pays for coalescing).
    max_queue_rows:
        Admission-control bound on queued rows (``503`` beyond it).
    request_timeout:
        Per-request deadline in seconds (``504`` on expiry); ``None``
        disables it.
    model_path:
        Default path for body-less ``POST /reload``.

    Notes
    -----
    ``start``/``stop`` are coroutines and must run on one event loop; use
    :class:`ServerThread` to drive a server from synchronous code.
    """

    def __init__(
        self,
        runner: ModelRunner,
        host: str = "127.0.0.1",
        port: int = 0,
        batch_size: int = 64,
        batch_deadline: float = 0.005,
        max_queue_rows: int = 4096,
        request_timeout: Optional[float] = None,
        model_path: Optional[str] = None,
    ) -> None:
        self.runner = runner
        self.host = host
        self.port = int(port)
        self.model_path = model_path
        self.metrics = ServingMetrics()
        self.batcher = MicroBatcher(
            runner.run_batch,
            batch_size=batch_size,
            deadline=batch_deadline,
            max_queue_rows=max_queue_rows,
            request_timeout=request_timeout,
        )
        self.reloads = 0
        self._draining = False
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()

    @classmethod
    def from_settings(cls, runner: ModelRunner, settings: Dict) -> "PredictionServer":
        """Build a server from a plain settings mapping (the config-file face).

        Keys mirror the ``serving`` config section: ``host``, ``port``,
        ``batch_size``, ``batch_deadline_ms``, ``max_queue_rows``,
        ``request_timeout_ms`` and ``model_path`` — all optional, with the
        constructor's defaults.  Durations arrive in *milliseconds* (the
        config-facing unit) and convert to the seconds the constructor takes.
        """
        deadline_ms = settings.get("batch_deadline_ms")
        timeout_ms = settings.get("request_timeout_ms")
        kwargs = {
            "host": settings.get("host", "127.0.0.1"),
            "port": settings.get("port", 0),
            "batch_size": settings.get("batch_size", 64),
            "max_queue_rows": settings.get("max_queue_rows", 4096),
            "model_path": settings.get("model_path"),
        }
        if deadline_ms is not None:
            kwargs["batch_deadline"] = float(deadline_ms) / 1000.0
        if timeout_ms is not None:
            kwargs["request_timeout"] = float(timeout_ms) / 1000.0
        return cls(runner, **kwargs)

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        """Bind the listening socket and start the flush loop.

        After this returns, :attr:`port` holds the actual bound port.
        """
        await self.batcher.start()
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        sock = self._server.sockets[0]
        self.port = sock.getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop accepting, answer everything in flight.

        With ``drain=True`` (default) new ``POST /predict`` admissions are
        refused with ``503`` while every already-queued request is flushed,
        dispatched and answered before the sockets close — no accepted
        request is ever dropped.  ``drain=False`` abandons the queue
        (pending callers receive :class:`ServingClosedError`).
        """
        self._draining = True
        if self._server is not None:
            # close() stops accepting immediately; wait_closed() must come
            # AFTER the drain — on Python >= 3.12 it waits for in-flight
            # connection handlers, which are parked on the batcher.
            self._server.close()
        if drain:
            await self.batcher.drain()
        else:
            self.batcher._closed = True
            for item in list(self.batcher._pending):
                if not item.future.done():
                    item.future.set_exception(ServingClosedError("server shut down"))
            await self.batcher.drain()
        # Let in-flight response writes finish before tearing connections down.
        for _ in range(100):
            if not self._connections:
                break
            await asyncio.sleep(0.01)
        for writer in list(self._connections):
            writer.close()
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover - defensive
                pass

    async def serve_forever(self) -> None:
        """Start, then run until cancelled (SIGINT/SIGTERM in the CLI)."""
        await self.start()
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            import signal

            for sig in (signal.SIGINT, signal.SIGTERM):
                loop.add_signal_handler(sig, stop_event.set)
        except (NotImplementedError, RuntimeError, ValueError):  # pragma: no cover
            pass  # non-posix loop or non-main thread: no signal-driven shutdown
        try:
            await stop_event.wait()
        finally:
            await self.stop(drain=True)

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------- HTTP machinery
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _BadRequest as exc:
                    await self._respond(writer, exc.status, {"error": str(exc)}, close=True)
                    return
                if request is None:
                    return
                status, payload, headers = await self._route(request)
                keep = request.keep_alive and not self._draining
                await self._respond(writer, status, payload, headers=headers, close=not keep)
                if not keep:
                    return
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _BadRequest("malformed request line")
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            if len(headers) > 100:
                raise _BadRequest("too many headers")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest("malformed header line")
            headers[name.strip().lower()] = value.strip()
        length = headers.get("content-length", "0")
        try:
            n_body = int(length)
        except ValueError:
            raise _BadRequest("malformed Content-Length") from None
        if n_body > MAX_BODY_BYTES:
            raise _BadRequest(
                f"request body of {n_body} bytes exceeds the {MAX_BODY_BYTES}-byte "
                "bound (use `repro predict` for bulk inference)",
                status=413,
            )
        body = await reader.readexactly(n_body) if n_body else b""
        return _Request(method, path, headers, body)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    # -------------------------------------------------------------- routing
    async def _route(
        self, request: _Request
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        route = (request.method, request.path.split("?", 1)[0])
        if route == ("GET", "/healthz"):
            return self._healthz()
        if route == ("GET", "/metrics"):
            return 200, self._metrics_payload(), None
        if route == ("POST", "/predict"):
            return await self._predict(request)
        if route == ("POST", "/reload"):
            return await self._reload(request)
        if route[1] in ("/healthz", "/metrics", "/predict", "/reload"):
            self.metrics.observe(route[1], 405)
            return 405, {"error": f"{request.method} not allowed on {route[1]}"}, None
        self.metrics.observe("unknown", 404)
        return 404, {"error": f"no such endpoint: {route[1]}"}, None

    def _healthz(self) -> Tuple[int, Dict[str, object], None]:
        status = 503 if self._draining else 200
        payload = {
            "status": "draining" if self._draining else "ok",
            "model_version": self.runner.version,
            "queued_rows": self.batcher.queued_rows,
        }
        self.metrics.observe("/healthz", status)
        return status, payload, None

    def _metrics_payload(self) -> Dict[str, object]:
        self.metrics.observe("/metrics", 200)
        payload = self.metrics.snapshot()
        payload["batcher"] = self.batcher.stats.as_dict()
        payload["queued_rows"] = self.batcher.queued_rows
        payload["model_version"] = self.runner.version
        payload["reloads"] = self.reloads
        payload["draining"] = self._draining
        return payload

    def _parse_predict_body(
        self, body: bytes
    ) -> Tuple[np.ndarray, bool, Optional[str], Optional[str]]:
        try:
            doc = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise _BadRequest(f"request body is not valid JSON: {exc}") from None
        if not isinstance(doc, dict) or "rows" not in doc:
            raise _BadRequest('request body must be a JSON object with a "rows" key')
        rows = doc["rows"]
        proba = bool(doc.get("proba", False))
        backend = doc.get("backend")
        if backend is not None:
            from repro.backend import list_backends

            known = list_backends()
            if not isinstance(backend, str) or backend not in known:
                raise _BadRequest(
                    f'unknown "backend" {backend!r} (available: {", ".join(known)})'
                )
        sparse = doc.get("sparse")
        if sparse is not None and sparse not in ("auto", "on", "off"):
            raise _BadRequest(f'"sparse" must be "auto", "on" or "off", got {sparse!r}')
        if not isinstance(rows, list) or not rows:
            raise _BadRequest('"rows" must be a non-empty list of feature rows')
        try:
            matrix = np.asarray(rows, dtype=np.float64)
        except (TypeError, ValueError) as exc:
            raise _BadRequest(f'"rows" is not a numeric matrix: {exc}') from None
        if matrix.ndim != 2:
            raise _BadRequest(f'"rows" must be 2-D (a list of rows), got shape {matrix.shape}')
        expected = self.runner.n_features
        if matrix.shape[1] != expected:
            raise _BadRequest(
                f"rows have {matrix.shape[1]} features, the model expects {expected}"
            )
        if not np.isfinite(matrix).all():
            raise _BadRequest('"rows" contains NaN or infinite values')
        return matrix, proba, backend, sparse

    async def _predict(
        self, request: _Request
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        start = time.perf_counter()
        if self._draining:
            self.metrics.observe("/predict", 503)
            return 503, {"error": "server is draining"}, {"Retry-After": "1"}
        try:
            matrix, proba, backend, sparse = self._parse_predict_body(request.body)
        except _BadRequest as exc:
            self.metrics.observe("/predict", exc.status)
            return exc.status, {"error": str(exc)}, None
        if backend is not None or sparse is not None:
            # Override requests cannot coalesce with default-path traffic
            # (different predictor, possibly different network clone), so
            # they bypass the micro-batcher and dispatch standalone off-loop.
            loop = asyncio.get_running_loop()
            try:
                result = await loop.run_in_executor(
                    None,
                    lambda: self.runner.run_batch(matrix, backend=backend, sparse=sparse),
                )
            except ReproError as exc:
                self.metrics.observe("/predict", 500)
                return 500, {"error": str(exc)}, None
            payload: Dict[str, object] = {
                "predictions": result.predictions.tolist(),
                "model_version": result.model_version,
                "batch_rows": int(matrix.shape[0]),
            }
            if proba:
                payload["probabilities"] = result.probabilities.tolist()
            self.metrics.observe("/predict", 200, latency=time.perf_counter() - start)
            return 200, payload, None
        try:
            result = await self.batcher.submit(matrix)
        except QueueFullError as exc:
            self.metrics.observe("/predict", 503)
            return 503, {"error": str(exc)}, {"Retry-After": str(exc.retry_after)}
        except ServingClosedError as exc:
            self.metrics.observe("/predict", 503)
            return 503, {"error": str(exc)}, {"Retry-After": "1"}
        except DeadlineExceededError as exc:
            self.metrics.observe("/predict", 504)
            return 504, {"error": str(exc)}, None
        except DispatchError as exc:
            self.metrics.observe("/predict", 500)
            return 500, {"error": str(exc)}, None
        payload: Dict[str, object] = {
            "predictions": result.predictions.tolist(),
            "model_version": result.model_version,
            "batch_rows": result.batch_rows,
        }
        if proba:
            payload["probabilities"] = result.probabilities.tolist()
        self.metrics.observe("/predict", 200, latency=time.perf_counter() - start)
        return 200, payload, None

    async def _reload(
        self, request: _Request
    ) -> Tuple[int, Dict[str, object], Optional[Dict[str, str]]]:
        if self._draining:
            self.metrics.observe("/reload", 503)
            return 503, {"error": "server is draining"}, {"Retry-After": "1"}
        path = self.model_path
        if request.body:
            try:
                doc = json.loads(request.body.decode("utf-8"))
            except (ValueError, UnicodeDecodeError) as exc:
                self.metrics.observe("/reload", 400)
                return 400, {"error": f"request body is not valid JSON: {exc}"}, None
            if not isinstance(doc, dict):
                self.metrics.observe("/reload", 400)
                return 400, {"error": "reload body must be a JSON object"}, None
            path = doc.get("model", path)
        if not path:
            self.metrics.observe("/reload", 400)
            return 400, {"error": 'no model path: POST {"model": PATH} or start with one'}, None
        loop = asyncio.get_running_loop()

        def load_and_swap() -> int:
            from pathlib import Path

            from repro.core import load_network

            # load + swap run off-loop; swap only flips the pointer, so the
            # event loop (and any in-flight batch) never blocks on the load.
            # A path inside a checkpoint directory (its parent holds a
            # MANIFEST.json) routes through the checkpoint loader, which
            # re-verifies the archive's SHA-256 against the manifest before
            # any byte of it reaches the runner — a corrupt or truncated
            # checkpoint is rejected here (400) and the old model keeps
            # serving.
            p = Path(path)
            from repro.checkpoint import MANIFEST_NAME, network_from_checkpoint

            if (p.parent / MANIFEST_NAME).is_file():
                return self.runner.swap(network_from_checkpoint(p))
            return self.runner.swap(load_network(path))

        try:
            version = await loop.run_in_executor(None, load_and_swap)
        except ReproError as exc:
            self.metrics.observe("/reload", 400)
            return 400, {"error": f"reload failed (model unchanged): {exc}"}, None
        self.reloads += 1
        self.metrics.observe("/reload", 200)
        return 200, {"model_version": version, "model": str(path)}, None


class ServerThread:
    """Run a :class:`PredictionServer` on a background event-loop thread.

    Synchronous harness for tests, the latency benchmark and notebook use:

    >>> with ServerThread(PredictionServer(runner)) as handle:
    ...     requests.post(handle.url + "/predict", ...)

    ``swap_model(network)`` hot-swaps in-process (the same runner path the
    ``/reload`` endpoint uses — retraining in the driver process can push a
    new model without touching disk).
    """

    def __init__(self, server: PredictionServer, startup_timeout: float = 10.0) -> None:
        self.server = server
        self._startup_timeout = startup_timeout
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    def __enter__(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self._loop)
            started.set()
            self._loop.run_forever()

        self._thread = threading.Thread(target=run, name="repro-serve", daemon=True)
        self._thread.start()
        started.wait(self._startup_timeout)
        future = asyncio.run_coroutine_threadsafe(self.server.start(), self._loop)
        future.result(self._startup_timeout)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def stop(self, drain: bool = True) -> None:
        """Stop the server (graceful drain by default) and join the thread."""
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.server.stop(drain=drain), self._loop)
        try:
            future.result(30.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10.0)
            self._loop.close()
            self._loop = None

    def swap_model(self, network) -> int:
        """In-process hot-swap (thread-safe); returns the new model version."""
        return self.server.runner.swap(network)

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def url(self) -> str:
        return self.server.url


def wait_until_listening(host: str, port: int, timeout: float = 10.0) -> None:
    """Block until a TCP connect to ``host:port`` succeeds (smoke helper)."""
    end = time.monotonic() + timeout
    while True:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return
        except OSError:
            if time.monotonic() > end:
                raise
            time.sleep(0.05)
