"""The streaming predictor: constant-memory, rank-sharded bulk inference.

``Network.predict`` materialises the full input and every layer-sized
intermediate in one shot; :class:`StreamingPredictor` instead drives a
:class:`~repro.datasets.stream.BatchStream` through
:class:`~repro.engine.LayerEngine.forward` with preallocated (optionally
double-buffered) :class:`~repro.engine.LayerWorkspace` buffers, so inference
over any input length runs at O(batch) memory and the steady-state loop
performs zero layer-sized allocations.  Per-backend numerics are identical to
``Network.predict`` up to the backend's declared precision (bit-for-bit on
the NumPy backend — ``tests/serving`` enforces both).

Sharding comes in two flavours:

* ``comm=`` (a :class:`repro.comm.Communicator`): **real multi-rank
  serving** — the rows are scattered over the communicator ranks through
  :meth:`~repro.comm.Communicator.scatter_rows`, every rank (worker
  threads/processes included; rank 0 is the driver, inline) streams its
  shard through its own replica, and the per-rank outputs are combined with
  a **single** ``allgather`` — one gather per call, independent of the
  number of batches.  On the process transport the model crosses the
  process boundary once per call as a broadcast npz blob (shared memory, no
  pickling of live layers).
* a :class:`~repro.backend.distributed.DistributedBackend` backend: the
  historical in-process simulation of the same row partitioning, kept for
  the ``--backend distributed`` path.
"""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

import numpy as np

from repro.backend.distributed import DistributedBackend, resolve_backend_name, split_ranks
from repro.comm import Communicator
from repro.core.execution import BackendExecutionMixin
from repro.datasets.stream import BatchStream
from repro.engine import ExecutionPlan, LayerEngine, PipelineWorker
from repro.exceptions import DataError, NotFittedError
from repro.utils.arrays import row_softmax
from repro.utils.validation import check_positive_int

__all__ = ["StreamingPredictor", "predict_stream", "predict_proba_stream"]

Source = Union[np.ndarray, BatchStream]


#: Worker-process-resident model replica: ``{"token": ..., "network": ...}``.
#: ``ProcessComm`` workers are persistent, so a replica rebuilt from one
#: predict call's broadcast blob can serve every subsequent call until the
#: driver's model actually changes (detected through the serving refresh
#: token) — the blob then stops crossing the process boundary entirely.
_REPLICA_CACHE: dict = {}


def _predict_shard_program(
    comm: Communicator,
    predictor: Optional["StreamingPredictor"],
    network,
    x: Optional[np.ndarray],
    blob: Optional[np.ndarray],
    ship_model: bool,
    batch_size: int,
    backend_spec,
    proba: bool,
    pipeline: bool = False,
    ship_blob: bool = True,
    model_token=None,
) -> Optional[np.ndarray]:
    """One rank's share of comm-sharded bulk inference.

    Rank 0 (the driver) streams its shard through the live predictor.
    Worker ranks obtain the model one of three ways: thread ranks share the
    driver's address space and read the live ``network`` directly (forward
    passes never mutate layer state, and each rank owns its own engine
    workspaces); process ranks receive it as a broadcast npz blob
    (``ship_model=True, ship_blob=True``) and rebuild a local replica —
    through shared memory, never pickled — which they then *cache* keyed on
    the driver's serving refresh token, so repeat calls with an unchanged
    model skip the broadcast and the rebuild entirely
    (``ship_blob=False``).  The per-rank outputs are combined with one
    ragged ``allgather`` (no padding needed — shapes travel with the
    payload), and only rank 0 materialises the final result, so nothing
    layer-sized is ever pickled back through the task queue.
    """
    if ship_model and ship_blob:
        blob = comm.bcast(blob, root=0)
    shard = comm.scatter_rows(x, root=0)
    if predictor is None:
        if network is None:
            if ship_blob:
                from repro.core.serialization import network_from_bytes

                network = network_from_bytes(blob.tobytes())
                _REPLICA_CACHE["token"] = model_token
                _REPLICA_CACHE["network"] = network
            else:
                if _REPLICA_CACHE.get("token") != model_token:
                    raise DataError(
                        "worker replica cache miss: the driver skipped the model "
                        "broadcast but this worker holds no replica for token "
                        f"{model_token!r}"
                    )
                network = _REPLICA_CACHE["network"]
        # The predictor (engines + workspaces) is cached alongside the
        # replica so repeat calls also reuse warm workspaces.
        pred_key = (model_token, int(batch_size), backend_spec, bool(pipeline))
        if network is _REPLICA_CACHE.get("network") and (
            _REPLICA_CACHE.get("predictor_key") == pred_key
        ):
            predictor = _REPLICA_CACHE["predictor"]
        else:
            predictor = StreamingPredictor(
                network, batch_size=batch_size, backend=backend_spec, pipeline=pipeline
            )
            if network is _REPLICA_CACHE.get("network"):
                _REPLICA_CACHE["predictor"] = predictor
                _REPLICA_CACHE["predictor_key"] = pred_key
    local = predictor._stream_local(shard, proba)
    gathered = comm.allgather(local)
    if comm.rank != 0:
        return None
    return np.concatenate(gathered, axis=0)


class _LayerStage:
    """One hidden layer bound to its streaming engine(s).

    With ``n_buffers > 1`` the stage alternates engines (each owning one
    workspace) per batch ordinal, so batch ``k``'s activations stay valid
    while batch ``k+1`` is computed into the other buffer — the invariant a
    pipelined consumer (one that holds the previous batch's view while the
    next is in flight) needs.  The sequential ``predict_stream`` loop
    consumes each batch before the next starts, so it defaults to a single
    buffer.
    """

    def __init__(self, layer, backend, batch_size: int, n_buffers: int) -> None:
        self.layer = layer
        self.engines: Tuple[LayerEngine, ...] = ()
        self.rebuild(backend, batch_size, n_buffers)

    def rebuild(self, backend, batch_size: int, n_buffers: int) -> None:
        # The stage's plan carries the layer's sparse policy, so the
        # engines' per-dispatch dense-vs-sparse decision matches the
        # context the stage hands them.
        plan = ExecutionPlan.for_traces(
            self.layer.traces, batch_size,
            sparse=getattr(self.layer, "sparse_mode", "auto"),
        )
        self.engines = tuple(LayerEngine(backend, plan) for _ in range(n_buffers))

    def stale(self, backend, n_rows: int) -> bool:
        traces = self.layer.traces
        engine = self.engines[0]
        return (
            engine.backend is not backend
            or not engine.matches(traces.n_input, tuple(traces.hidden_sizes))
            or not engine.accommodates(n_rows)
            or engine.plan.sparse != getattr(self.layer, "sparse_mode", "auto")
        )

    def forward(self, x: np.ndarray, ordinal: int) -> np.ndarray:
        """Hidden activations for one batch (a workspace view)."""
        engine = self.engines[ordinal % len(self.engines)]
        layer = self.layer
        # Serving honours the layer's block-sparse execution plan: a sparse
        # layer streams through the gather-GEMM kernels (packed slabs shared
        # with training), a dense layer through the masked GEMM.  The dense
        # weight buffer is passed raw (``_weights``) so a sparse dispatch
        # never forces the full-matrix materialisation.
        sparse = layer.sparse_context() if hasattr(layer, "sparse_context") else None
        return engine.forward(
            x,
            layer._weights if sparse is not None else layer.weights,
            layer.bias,
            layer.mask_expanded,
            layer.hyperparams.bias_gain,
            # Weight buffers mutate in place across refreshes; the token
            # invalidates this stage's cached weights*mask product when the
            # layer is (re)trained between predict calls.
            weights_token=getattr(layer, "weights_token", None),
            sparse=sparse,
        )

    def workspace_nbytes(self) -> int:
        return sum(engine.workspace.nbytes() for engine in self.engines)


class StreamingPredictor(BackendExecutionMixin):
    """Streams bulk inference for a fitted network at O(batch) memory.

    Parameters
    ----------
    network:
        A fitted (or at least built) :class:`~repro.core.network.Network`;
        duck-typed — any object with built ``hidden_layers`` and ``head``
        works.
    batch_size:
        Rows per streamed batch; peak intermediate memory is proportional to
        this, never to the input length.
    backend:
        Optional backend name or instance forced onto the whole stack.  When
        omitted (the default) every stage keeps *its layer's own* resolved
        backend — exactly the backends ``Network.predict`` would use, so the
        equivalence guarantee holds even for stacks with explicit per-layer
        backend choices.
    double_buffer:
        Keep two workspaces per hidden layer and alternate between batches,
        so batch ``k``'s activations stay valid while batch ``k+1``
        computes.  Off by default: the sequential prediction loop consumes
        each batch immediately, so the second buffer would only double
        workspace memory.
    pipeline:
        Overlap the stages per batch: a background
        :class:`~repro.engine.pipeline.PipelineWorker` runs the hidden
        stages of batch ``k`` while the driver runs the *head* stage
        (decision function, softmax/argmax, scatter) of batch ``k-1``.
        Implies double buffering (batch ``k-1``'s representation must stay
        valid while batch ``k`` computes).  Bit-for-bit the same outputs as
        the sequential loop — only the schedule changes.
    comm:
        Optional :class:`repro.comm.Communicator` or transport spec string
        (``"thread:4"``, ``"process:4"``, ``"tcp://host:port?ranks=4"`` —
        see :func:`repro.comm.resolve_comm`; spec-created communicators are
        owned by the predictor and released by :meth:`close`).  With
        ``size > 1`` each
        ``predict_stream``/``predict_proba_stream`` call scatters the rows
        over the ranks (real threads or OS processes), streams every shard
        concurrently and recombines the outputs with a single allgather.
    """

    #: ``BackendExecutionMixin.is_built`` reads ``traces``; the predictor has
    #: no traces of its own (it borrows the layers'), so pin the attribute.
    traces = None

    def __init__(
        self,
        network,
        batch_size: int = 1024,
        backend=None,
        double_buffer: bool = False,
        pipeline: bool = False,
        comm: Union[Communicator, str, None] = None,
    ) -> None:
        head = getattr(network, "head", None)
        if head is None or not head.is_built:
            raise NotFittedError("StreamingPredictor requires a fitted network (built head)")
        for layer in network.hidden_layers:
            if not layer.is_built:
                raise NotFittedError(f"hidden layer '{layer.name}' has not been built")
            # Networks trained with stale-weights caching may hold weights a
            # few trace updates behind; serving reads the weight buffers, so
            # settle them once up front (a no-op on exactly-trained layers).
            if hasattr(layer, "flush_weights"):
                layer.flush_weights()
        self._owns_comm = False
        if isinstance(comm, str):
            # Transport spec strings ("thread:4", "process:4",
            # "tcp://host:port?ranks=4") resolve through the one shared
            # factory; the predictor owns — and must close — the result.
            from repro.comm import resolve_comm

            comm = resolve_comm(comm)
            self._owns_comm = comm is not None
        elif comm is not None and not isinstance(comm, Communicator):
            raise DataError(
                "comm must be a repro.comm.Communicator or a transport spec string"
            )
        self.network = network
        self.head = head
        self.comm = comm
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.pipeline = bool(pipeline)
        self.n_buffers = 2 if (double_buffer or self.pipeline) else 1
        self.name = f"serving:{getattr(network, 'name', 'network')}"
        self._init_execution(backend)
        self._stages: List[_LayerStage] = [
            _LayerStage(layer, self._stage_backend(layer), self.batch_size, self.n_buffers)
            for layer in network.hidden_layers
        ]

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the communicator when the predictor created it from a spec."""
        if self._owns_comm and self.comm is not None:
            self.comm.close()
            self.comm = None
            self._owns_comm = False

    def __enter__(self) -> "StreamingPredictor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- backend
    def _stage_backend(self, layer):
        """The backend one stage dispatches on: the override, else the layer's."""
        return self._backend if self._backend is not None else layer.backend

    def _uniform_backend(self):
        """The single backend serving the whole stack, or ``None`` when the
        stages keep heterogeneous per-layer backends."""
        if self._backend is not None:
            return self._backend
        layers = self.network.hidden_layers
        if not layers:
            return None
        first = layers[0].backend
        if all(layer.backend is first for layer in layers[1:]):
            return first
        return None

    @property
    def backend(self):
        """The effective serving backend (first stage's for mixed stacks).

        Overrides the mixin property, which would *cache* a default NumPy
        instance on first read and thereby silently lock a per-layer stack
        into uniform-NumPy mode.
        """
        uniform = self._uniform_backend()
        if uniform is not None:
            return uniform
        layers = self.network.hidden_layers
        if layers:
            return layers[0].backend
        from repro.backend.registry import get_backend

        return get_backend(None)

    @backend.setter
    def backend(self, value) -> None:
        from repro.backend.registry import get_backend

        self._backend_spec = value
        self._backend = get_backend(value)

    # ------------------------------------------------------------- capacity
    def workspace_nbytes(self) -> int:
        """Total preallocated workspace bytes — independent of input length."""
        return sum(stage.workspace_nbytes() for stage in self._stages)

    def _ensure_capacity(self, n_rows: int) -> None:
        """Rebuild any stage whose engines no longer fit the layer/batch/backend."""
        for stage in self._stages:
            effective = self._stage_backend(stage.layer)
            if stage.stale(effective, n_rows):
                stage.rebuild(effective, max(int(n_rows), self.batch_size), self.n_buffers)

    # ------------------------------------------------------------- dispatch
    def _hidden_batch(self, x: np.ndarray, ordinal: int) -> np.ndarray:
        """The hidden representation of one batch (a workspace view)."""
        representation = x
        for stage in self._stages:
            representation = stage.layer.input_spec.validate_batch(representation)
            representation = stage.forward(representation, ordinal)
        return representation

    def _decision_batch(self, x: np.ndarray, ordinal: int) -> np.ndarray:
        """Head support values for one batch, streamed through the stages."""
        return self.head.decision_function(self._hidden_batch(x, ordinal))

    def _scatter_batch(
        self, out: np.ndarray, batch, representation: np.ndarray, proba: bool
    ) -> None:
        """Head stage for one batch: decision + scatter into ``out``."""
        decision = self.head.decision_function(representation)
        if proba:
            out[batch.indices] = row_softmax(decision)
        else:
            out[batch.indices] = np.argmax(decision, axis=1)

    def _stream_into(self, out: np.ndarray, stream: BatchStream, proba: bool) -> np.ndarray:
        """Drive one stream, scattering per-batch results into ``out``.

        With ``pipeline=True`` the hidden stages of batch ``k`` run on a
        background worker while the driver runs the head stage of batch
        ``k-1`` — the double-buffered stage engines keep batch ``k-1``'s
        representation valid while batch ``k`` computes into the sibling
        workspaces.  The same kernels run on the same buffers either way,
        so the outputs are bit-for-bit identical to the sequential loop.
        """
        if not self.pipeline:
            for batch in stream:
                self._ensure_capacity(batch.size)
                decision = self._decision_batch(batch.x, batch.ordinal)
                if proba:
                    out[batch.indices] = row_softmax(decision)
                else:
                    out[batch.indices] = np.argmax(decision, axis=1)
            return out
        with PipelineWorker(name=f"{self.name}-pipeline") as worker:
            pending = None
            for batch in stream:
                # Capacity is settled before submitting, and mid-stream
                # batches never grow (BatchStream yields uniform batches
                # with a possibly-smaller tail), so the worker's engines are
                # stable while its task is in flight.
                self._ensure_capacity(batch.size)
                task = worker.submit(self._hidden_batch, batch.x, batch.ordinal)
                if pending is not None:
                    previous, previous_task = pending
                    self._scatter_batch(out, previous, previous_task.result(), proba)
                pending = (batch, task)
            if pending is not None:
                previous, previous_task = pending
                self._scatter_batch(out, previous, previous_task.result(), proba)
        return out

    # ------------------------------------------------------------ front end
    def _as_stream(self, source: Source) -> BatchStream:
        if isinstance(source, BatchStream):
            if source.drop_last and source.n_samples % source.batch_size != 0:
                raise DataError(
                    "cannot stream predictions from a drop_last stream: the "
                    "tail rows would never receive a prediction"
                )
            return source
        x = np.asarray(source)
        if x.ndim != 2:
            raise DataError(f"predict_stream expects a 2-D matrix, got shape {x.shape}")
        return BatchStream(x, batch_size=self.batch_size)

    def _output(self, n_rows: int, proba: bool) -> np.ndarray:
        if proba:
            return np.empty((n_rows, self.head.n_classes), dtype=np.float64)
        return np.empty(n_rows, dtype=np.int64)

    def _stream(self, source: Source, proba: bool) -> np.ndarray:
        if self.comm is not None and self.comm.size > 1 and not isinstance(source, BatchStream):
            x = np.asarray(source)
            if x.ndim != 2:
                raise DataError(f"predict_stream expects a 2-D matrix, got shape {x.shape}")
            return self._stream_spmd(x, proba)
        return self._stream_local(source, proba)

    def _stream_local(self, source: Source, proba: bool) -> np.ndarray:
        stream = self._as_stream(source)
        n = stream.n_samples
        if n == 0:
            return self._output(0, proba)
        uniform = self._uniform_backend()
        comm = getattr(uniform, "comm", None)
        if (
            isinstance(uniform, DistributedBackend)
            and comm is not None
            and comm.size > 1
            and not isinstance(source, BatchStream)
        ):
            return self._stream_sharded(stream.x, comm, proba)
        return self._stream_into(self._output(n, proba), stream, proba)

    def _model_token(self) -> tuple:
        """Serving refresh token: changes whenever the model's parameters do.

        Built from a per-network-instance nonce plus every layer's in-place
        refresh generation (``weights_token``), its mask generation
        (``mask_token`` — catches ``set_density``-style mask mutations that
        no weight refresh accompanies), its trace-update count and its
        structural-plasticity update count, plus the head's counters —
        any (re)training between predict calls changes at least one
        component, and the nonce keeps two *different* models (whose
        counters can coincide — e.g. any two networks freshly loaded from
        disk) from ever sharing a token.  Worker-resident replicas in
        :data:`_REPLICA_CACHE` are keyed on it.
        """
        network = self.network
        nonce = getattr(network, "_serving_model_nonce", None)
        if nonce is None:
            import uuid

            nonce = uuid.uuid4().hex
            network._serving_model_nonce = nonce
        parts: List[tuple] = [(nonce,)]
        for layer in self.network.hidden_layers:
            parts.append(
                (
                    int(getattr(layer, "weights_token", 0)),
                    int(getattr(layer, "mask_token", 0)),
                    int(getattr(layer.traces, "updates_seen", 0)),
                    int(getattr(getattr(layer, "plasticity", None), "n_updates", 0)),
                )
            )
        head = self.head
        head_traces = getattr(head, "traces", None)
        parts.append(
            (
                int(getattr(head, "weights_token", 0)),
                int(getattr(head_traces, "updates_seen", 0)) if head_traces else 0,
            )
        )
        return tuple(parts)

    def _stream_spmd(self, x: np.ndarray, proba: bool) -> np.ndarray:
        """Scatter rows over the communicator ranks; gather outputs once.

        Thread ranks read the driver's live network directly; process ranks
        receive it as a broadcast npz blob (a ``uint8`` array moved through
        shared memory, nothing layer-sized is pickled) — **once per model
        version**: the blob broadcast is skipped whenever the serving
        refresh token matches what this communicator's workers already hold
        (they cache the rebuilt replica), so steady-state serving moves only
        the rows and the predictions.  Each rank streams its contiguous
        shard through a local predictor, and one ragged ``allgather``
        recombines the results in rank order.
        """
        comm = self.comm
        # Transports whose worker ranks live in other processes (or on other
        # hosts) need the model shipped as a blob; thread ranks share memory.
        ship_model = comm.transport in ("process", "tcp")
        model_token = self._model_token()
        ship_blob = True
        blob = None
        if ship_model:
            # The driver tracks, per communicator, the token of the replica
            # its workers hold; a match means the broadcast can be skipped.
            # The record is only written *after* a successful program run
            # (below) — recording it up front would poison the communicator
            # if a worker failed before caching the replica.
            ship_blob = getattr(comm, "_serving_replica_token", None) != model_token
            if ship_blob:
                from repro.core.serialization import network_to_bytes

                blob = np.frombuffer(network_to_bytes(self.network), dtype=np.uint8)
        backend_spec = resolve_backend_name(self._backend_spec, self._backend)
        shared_network = None if ship_model else self.network
        x = np.ascontiguousarray(x, dtype=np.float64)
        rank_args: List[tuple] = [
            (
                self,
                None,
                x,
                blob,
                ship_model,
                self.batch_size,
                backend_spec,
                proba,
                self.pipeline,
                ship_blob,
                model_token,
            )
        ]
        rank_args += [
            (
                None,
                shared_network,
                None,
                None,
                ship_model,
                self.batch_size,
                backend_spec,
                proba,
                self.pipeline,
                ship_blob,
                model_token,
            )
            for _ in range(1, comm.size)
        ]
        try:
            results = comm.run(_predict_shard_program, rank_args)
        except BaseException:
            if ship_model:
                # Worker state is unknown after a failed program: force the
                # next call to re-broadcast the model.
                comm._serving_replica_token = None
            raise
        if ship_model:
            comm._serving_replica_token = model_token
        return results[0]

    def _stream_sharded(self, x: np.ndarray, comm, proba: bool) -> np.ndarray:
        """Shard rows over the communicator ranks; gather results once.

        Each rank streams only its contiguous block of rows through its own
        :class:`BatchStream`; the per-rank outputs are padded to a common
        shard length and combined with a single ``allgather`` — one
        collective per call regardless of input length.
        """
        n = x.shape[0]
        shards = split_ranks(n, comm.size)
        width = max(hi - lo for lo, hi in shards)
        n_cols = self.head.n_classes if proba else 1
        padded: List[np.ndarray] = []
        for lo, hi in shards:
            rank_out = np.zeros((width, n_cols), dtype=np.float64)
            if hi > lo:
                part = self._output(hi - lo, proba)
                self._stream_into(
                    part, BatchStream(x[lo:hi], batch_size=self.batch_size), proba
                )
                rank_out[: hi - lo] = part.reshape(hi - lo, n_cols)
            padded.append(rank_out)
        gathered = comm.allgather(padded)
        trimmed = [g[: hi - lo] for g, (lo, hi) in zip(gathered, shards)]
        stacked = np.concatenate(trimmed, axis=0)
        if proba:
            return stacked
        return stacked[:, 0].astype(np.int64)

    def predict_stream(self, source: Source) -> np.ndarray:
        """Hard class predictions for a streamed source.

        Parameters
        ----------
        source:
            Either a 2-D feature matrix (streamed in ``batch_size``
            chunks; rank-sharded when a ``comm`` was given) or a prebuilt
            :class:`BatchStream` (its own batching — including shuffle
            order — is respected, and results are scattered back to source
            order via the batch indices).

        Returns
        -------
        numpy.ndarray
            ``(n_samples,)`` integer class labels, in source order.
            Bit-for-bit equal to ``Network.predict`` on the NumPy backend.

        Raises
        ------
        DataError
            Rows do not match the first hidden layer's input spec, or
            ``source`` is not 2-D.
        BackendError
            A backend worker or communicator rank failed mid-stream.
        """
        return self._stream(source, proba=False)

    def predict_proba_stream(self, source: Source) -> np.ndarray:
        """Class-probability matrix, streamed at O(batch) memory.

        Same contract as :meth:`predict_stream` (parameters, raises,
        ordering) but returns the ``(n_samples, n_classes)``
        row-stochastic probability matrix instead of hard labels.
        """
        return self._stream(source, proba=True)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StreamingPredictor(backend={self.backend.name}, "
            f"batch_size={self.batch_size}, stages={len(self._stages)}, "
            f"workspace={self.workspace_nbytes() / 1e6:.2f} MB)"
        )


def predict_stream(
    network, source: Source, batch_size: int = 1024, backend=None, comm=None, pipeline=False
) -> np.ndarray:
    """One-shot helper: hard predictions for ``source`` at O(batch) memory."""
    predictor = StreamingPredictor(
        network, batch_size=batch_size, backend=backend, comm=comm, pipeline=pipeline
    )
    return predictor.predict_stream(source)


def predict_proba_stream(
    network, source: Source, batch_size: int = 1024, backend=None, comm=None, pipeline=False
) -> np.ndarray:
    """One-shot helper: class probabilities for ``source`` at O(batch) memory."""
    predictor = StreamingPredictor(
        network, batch_size=batch_size, backend=backend, comm=comm, pipeline=pipeline
    )
    return predictor.predict_proba_stream(source)
