"""Sharded streaming inference.

``repro.serving`` is the serving half of the streaming execution engine:
where ``Network.fit`` streams *training* batches through fused backend
primitives, :class:`StreamingPredictor` streams *inference* over arbitrarily
large inputs at O(batch) memory — every hidden layer runs through
preallocated (optionally double-buffered)
:class:`~repro.engine.LayerWorkspace` buffers, so bulk prediction performs
zero per-batch layer-sized allocations.

Passing ``comm=`` (a :class:`repro.comm.Communicator`) shards each call
over *real* ranks — worker threads or OS processes — via
``scatter_rows`` + one ragged ``allgather``; the model reaches process
ranks once per call as a broadcast npz blob through shared memory.  The
older in-process simulation (a
:class:`~repro.backend.distributed.DistributedBackend` backend) sharding
rows with a single driver-side gather is still supported.  Both exploit
the same "communication scales with the model, not the data" property the
training path uses.

The *online* half lives in :mod:`repro.serving.server`: an asyncio
HTTP/JSON endpoint (``repro serve``) whose concurrent single-row requests
are coalesced by :class:`~repro.serving.batcher.MicroBatcher` into
micro-batches and dispatched through a cached predictor's preallocated
workspaces — flush on ``batch_size`` rows or a deadline, bounded-queue
backpressure (503 + ``Retry-After``), per-request timeouts (504) and
zero-downtime model hot-swap (``POST /reload``).  See ``docs/serving.md``.

Entry points:

* :class:`StreamingPredictor` — owns workspace lifecycle + backend
  resolution for a fitted network.
* :func:`predict_stream` / :func:`predict_proba_stream` — one-shot helpers.
* ``Network.predict_stream`` / ``Network.predict_proba_stream`` — facades on
  the network front end.
* ``python -m repro.cli predict`` — CSV/npz in, predictions out (bulk).
* :class:`PredictionServer` / ``python -m repro.cli serve`` — the online
  request-facing HTTP endpoint over :class:`ModelRunner` +
  :class:`MicroBatcher`.
"""

from repro.serving.batcher import (
    BatchResult,
    DeadlineExceededError,
    DispatchError,
    MicroBatcher,
    QueueFullError,
    RequestSlice,
    ServingClosedError,
)
from repro.serving.predictor import (
    StreamingPredictor,
    predict_proba_stream,
    predict_stream,
)
from repro.serving.server import ModelRunner, PredictionServer, ServerThread, ServingMetrics

__all__ = [
    "BatchResult",
    "DeadlineExceededError",
    "DispatchError",
    "MicroBatcher",
    "ModelRunner",
    "PredictionServer",
    "QueueFullError",
    "RequestSlice",
    "ServerThread",
    "ServingClosedError",
    "ServingMetrics",
    "StreamingPredictor",
    "predict_proba_stream",
    "predict_stream",
]
