"""Sharded streaming inference.

``repro.serving`` is the serving half of the streaming execution engine:
where ``Network.fit`` streams *training* batches through fused backend
primitives, :class:`StreamingPredictor` streams *inference* over arbitrarily
large inputs at O(batch) memory — every hidden layer runs through
preallocated (optionally double-buffered)
:class:`~repro.engine.LayerWorkspace` buffers, so bulk prediction performs
zero per-batch layer-sized allocations.

Passing ``comm=`` (a :class:`repro.comm.Communicator`) shards each call
over *real* ranks — worker threads or OS processes — via
``scatter_rows`` + one ragged ``allgather``; the model reaches process
ranks once per call as a broadcast npz blob through shared memory.  The
older in-process simulation (a
:class:`~repro.backend.distributed.DistributedBackend` backend) sharding
rows with a single driver-side gather is still supported.  Both exploit
the same "communication scales with the model, not the data" property the
training path uses.

Entry points:

* :class:`StreamingPredictor` — owns workspace lifecycle + backend
  resolution for a fitted network.
* :func:`predict_stream` / :func:`predict_proba_stream` — one-shot helpers.
* ``Network.predict_stream`` / ``Network.predict_proba_stream`` — facades on
  the network front end.
* ``python -m repro.cli predict`` — CSV/npz in, predictions out.
"""

from repro.serving.predictor import (
    StreamingPredictor,
    predict_proba_stream,
    predict_stream,
)

__all__ = ["StreamingPredictor", "predict_stream", "predict_proba_stream"]
