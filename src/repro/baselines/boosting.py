"""Gradient-boosted decision trees (the "BDT" baseline).

A from-scratch implementation of gradient boosting for binary
classification with the logistic loss: at every round a
:class:`repro.baselines.trees.RegressionTree` is fitted to the negative
gradient (residual ``y - p``) and added to the ensemble with a shrinkage
factor.  Stochastic boosting (row subsampling) and early stopping on a
validation fraction are supported — the same family of model that reached
~80% AUC in Baldi et al.'s comparison on the real HIGGS data.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.base import BaselineClassifier
from repro.baselines.trees import RegressionTree
from repro.exceptions import ConfigurationError, DataError
from repro.utils.rng import as_rng

__all__ = ["GradientBoostingBaseline"]


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    expz = np.exp(z[~positive])
    out[~positive] = expz / (1.0 + expz)
    return out


class GradientBoostingBaseline(BaselineClassifier):
    """Binary gradient-boosted trees with logistic loss.

    Parameters
    ----------
    n_estimators:
        Maximum number of boosting rounds.
    learning_rate:
        Shrinkage applied to every tree's contribution.
    max_depth, min_samples_leaf, max_thresholds:
        Weak-learner (regression tree) capacity controls.
    subsample:
        Row subsampling fraction per round (stochastic gradient boosting).
    early_stopping_rounds:
        Stop when the validation log-loss has not improved for this many
        rounds (``None`` disables early stopping).
    validation_fraction:
        Fraction of the training set held out for early stopping.
    """

    name = "gradient-boosting"

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 20,
        max_thresholds: int = 16,
        subsample: float = 1.0,
        early_stopping_rounds: Optional[int] = None,
        validation_fraction: float = 0.1,
        seed=None,
    ) -> None:
        super().__init__()
        if n_estimators <= 0:
            raise ConfigurationError("n_estimators must be positive")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError("subsample must be in (0, 1]")
        if early_stopping_rounds is not None and early_stopping_rounds <= 0:
            raise ConfigurationError("early_stopping_rounds must be positive when set")
        if not 0.0 < validation_fraction < 1.0:
            raise ConfigurationError("validation_fraction must be in (0, 1)")
        self.n_estimators = int(n_estimators)
        self.learning_rate = float(learning_rate)
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_thresholds = int(max_thresholds)
        self.subsample = float(subsample)
        self.early_stopping_rounds = early_stopping_rounds
        self.validation_fraction = float(validation_fraction)
        self._rng = as_rng(seed)
        self.trees_: List[RegressionTree] = []
        self.initial_score_: float = 0.0
        self.train_losses_: List[float] = []
        self.validation_losses_: List[float] = []

    # ----------------------------------------------------------------- fit
    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        if self.n_classes_ != 2:
            raise DataError("GradientBoostingBaseline supports binary classification only")
        rng = self._rng
        n = X.shape[0]
        # Hold out a validation slice for early stopping.
        use_validation = self.early_stopping_rounds is not None
        if use_validation:
            order = rng.permutation(n)
            n_val = max(1, int(round(n * self.validation_fraction)))
            val_idx, train_idx = order[:n_val], order[n_val:]
        else:
            train_idx = np.arange(n)
            val_idx = np.empty(0, dtype=np.int64)
        X_train, y_train = X[train_idx], y[train_idx].astype(np.float64)
        X_val, y_val = X[val_idx], y[val_idx].astype(np.float64)

        prior = np.clip(y_train.mean(), 1e-6, 1 - 1e-6)
        self.initial_score_ = float(np.log(prior / (1.0 - prior)))
        self.trees_ = []
        self.train_losses_ = []
        self.validation_losses_ = []

        score_train = np.full(X_train.shape[0], self.initial_score_)
        score_val = np.full(X_val.shape[0], self.initial_score_)
        best_val = np.inf
        rounds_since_best = 0
        best_length = 0

        for _ in range(self.n_estimators):
            prob = _sigmoid(score_train)
            residual = y_train - prob
            if self.subsample < 1.0:
                pick = rng.random(X_train.shape[0]) < self.subsample
                if pick.sum() < 2 * self.min_samples_leaf:
                    pick = np.ones(X_train.shape[0], dtype=bool)
            else:
                pick = np.ones(X_train.shape[0], dtype=bool)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_thresholds=self.max_thresholds,
            ).fit(X_train[pick], residual[pick])
            self.trees_.append(tree)
            score_train += self.learning_rate * tree.predict(X_train)[:, 0]
            train_loss = self._log_loss(y_train, _sigmoid(score_train))
            self.train_losses_.append(train_loss)
            if use_validation:
                score_val += self.learning_rate * tree.predict(X_val)[:, 0]
                val_loss = self._log_loss(y_val, _sigmoid(score_val))
                self.validation_losses_.append(val_loss)
                if val_loss < best_val - 1e-6:
                    best_val = val_loss
                    rounds_since_best = 0
                    best_length = len(self.trees_)
                else:
                    rounds_since_best += 1
                    if rounds_since_best >= self.early_stopping_rounds:
                        self.trees_ = self.trees_[:best_length]
                        break

    @staticmethod
    def _log_loss(y: np.ndarray, p: np.ndarray) -> float:
        p = np.clip(p, 1e-12, 1 - 1e-12)
        return float(-np.mean(y * np.log(p) + (1 - y) * np.log(1 - p)))

    # ------------------------------------------------------------- predict
    def decision_function(self, X: np.ndarray) -> np.ndarray:
        """Additive log-odds score of the ensemble."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        score = np.full(X.shape[0], self.initial_score_)
        for tree in self.trees_:
            score += self.learning_rate * tree.predict(X)[:, 0]
        return score

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        prob = _sigmoid(self.decision_function(X))
        return np.stack([1.0 - prob, prob], axis=1)

    @property
    def n_trees_(self) -> int:
        return len(self.trees_)
