"""Common interface for baseline classifiers."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.exceptions import DataError, NotFittedError
from repro.metrics.classification import accuracy, log_loss
from repro.metrics.roc import roc_auc
from repro.utils.validation import check_array, check_labels

__all__ = ["BaselineClassifier"]


class BaselineClassifier:
    """Base class providing the shared fit/predict/evaluate contract.

    Subclasses implement ``_fit(X, y)`` and ``_predict_proba(X)``; everything
    else (validation, evaluation metrics, binary score extraction) is shared.
    """

    name: str = "baseline"

    def __init__(self) -> None:
        self.n_classes_: Optional[int] = None
        self.n_features_: Optional[int] = None

    # ------------------------------------------------------------------ API
    def fit(self, X: np.ndarray, y: np.ndarray) -> "BaselineClassifier":
        X = check_array(X, name="X", ndim=2)
        y = check_labels(y, name="y")
        if X.shape[0] != y.shape[0]:
            raise DataError("X and y are misaligned")
        self.n_classes_ = int(y.max()) + 1
        if self.n_classes_ < 2:
            raise DataError("at least two classes are required")
        self.n_features_ = X.shape[1]
        self._fit(X, y)
        return self

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        self._check_fitted()
        X = check_array(X, name="X", ndim=2)
        if X.shape[1] != self.n_features_:
            raise DataError(
                f"X has {X.shape[1]} features; the model was fitted with {self.n_features_}"
            )
        proba = self._predict_proba(X)
        return np.asarray(proba, dtype=np.float64)

    def predict(self, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.predict_proba(X), axis=1)

    def decision_scores(self, X: np.ndarray) -> np.ndarray:
        """Positive-class probability for binary problems (used for AUC)."""
        proba = self.predict_proba(X)
        if proba.shape[1] != 2:
            raise DataError("decision_scores is only defined for binary classifiers")
        return proba[:, 1]

    def evaluate(self, X: np.ndarray, y: np.ndarray) -> Dict[str, float]:
        """Accuracy, log-loss and (binary) AUC on a labelled set."""
        y = check_labels(y, name="y")
        proba = self.predict_proba(X)
        result = {
            "accuracy": accuracy(y, np.argmax(proba, axis=1)),
            "log_loss": log_loss(y, proba),
        }
        if proba.shape[1] == 2 and len(np.unique(y)) == 2:
            result["auc"] = roc_auc(y, proba[:, 1])
        return result

    # ------------------------------------------------------------ internals
    def _check_fitted(self) -> None:
        if self.n_classes_ is None:
            raise NotFittedError(f"{type(self).__name__} has not been fitted")

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        raise NotImplementedError

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(fitted={self.n_classes_ is not None})"
