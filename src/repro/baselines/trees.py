"""Decision-tree regressors/classifiers built from scratch.

Two pieces live here:

* :class:`RegressionTree` — a CART-style regression tree on a squared-error
  criterion, used as the weak learner inside
  :class:`repro.baselines.boosting.GradientBoostingBaseline`.
* :class:`DecisionTreeBaseline` — a standalone classification tree (Gini
  impurity), useful as a cheap interpretable baseline and as a component of
  the tests that validate the boosting machinery.

The split search is vectorised per feature: candidate thresholds come from
quantiles of the feature values at the node, and the split quality for all
candidates of one feature is evaluated with cumulative sums rather than a
Python loop over thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.baselines.base import BaselineClassifier
from repro.exceptions import ConfigurationError
from repro.utils.arrays import one_hot
from repro.utils.rng import as_rng

__all__ = ["RegressionTree", "DecisionTreeBaseline", "DecisionStump"]


@dataclass
class _Node:
    """A tree node; leaves carry ``value`` and internal nodes a split."""

    value: np.ndarray
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree minimising squared error.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (a stump has depth 1).
    min_samples_leaf:
        Minimum samples required in each child to accept a split.
    max_thresholds:
        Number of candidate thresholds (feature quantiles) per feature.
    """

    def __init__(
        self, max_depth: int = 3, min_samples_leaf: int = 10, max_thresholds: int = 16
    ) -> None:
        if max_depth < 1:
            raise ConfigurationError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ConfigurationError("min_samples_leaf must be >= 1")
        if max_thresholds < 1:
            raise ConfigurationError("max_thresholds must be >= 1")
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_thresholds = int(max_thresholds)
        self.root_: Optional[_Node] = None
        self.n_nodes_ = 0

    # ----------------------------------------------------------------- fit
    def fit(self, X: np.ndarray, targets: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if targets.ndim == 1:
            targets = targets[:, None]
        if X.shape[0] != targets.shape[0]:
            raise ConfigurationError("X and targets are misaligned")
        self.n_nodes_ = 0
        self.root_ = self._build(X, targets, depth=0)
        return self

    def _build(self, X: np.ndarray, targets: np.ndarray, depth: int) -> _Node:
        self.n_nodes_ += 1
        node_value = targets.mean(axis=0)
        if depth >= self.max_depth or X.shape[0] < 2 * self.min_samples_leaf:
            return _Node(value=node_value)
        feature, threshold, gain = self._best_split(X, targets)
        if feature < 0 or gain <= 1e-12:
            return _Node(value=node_value)
        mask = X[:, feature] <= threshold
        left = self._build(X[mask], targets[mask], depth + 1)
        right = self._build(X[~mask], targets[~mask], depth + 1)
        return _Node(value=node_value, feature=feature, threshold=threshold, left=left, right=right)

    def _best_split(self, X: np.ndarray, targets: np.ndarray) -> Tuple[int, float, float]:
        n, d = X.shape
        total_sum = targets.sum(axis=0)
        total_sq = float(np.sum(targets**2))
        parent_sse = total_sq - float(np.sum(total_sum**2)) / n
        best = (-1, 0.0, 0.0)
        for feature in range(d):
            column = X[:, feature]
            order = np.argsort(column, kind="mergesort")
            sorted_vals = column[order]
            sorted_targets = targets[order]
            csum = np.cumsum(sorted_targets, axis=0)
            csq = np.cumsum(np.sum(sorted_targets**2, axis=1))
            # Candidate split positions: after index i (1-based counts).
            if n > self.max_thresholds:
                positions = np.unique(
                    np.linspace(
                        self.min_samples_leaf, n - self.min_samples_leaf, self.max_thresholds
                    ).astype(int)
                )
            else:
                positions = np.arange(self.min_samples_leaf, n - self.min_samples_leaf + 1)
            positions = positions[
                (positions >= self.min_samples_leaf) & (positions <= n - self.min_samples_leaf)
            ]
            if positions.size == 0:
                continue
            # Skip positions where the value does not change (no valid threshold).
            valid = sorted_vals[positions - 1] < sorted_vals[np.minimum(positions, n - 1)]
            positions = positions[valid]
            if positions.size == 0:
                continue
            left_n = positions.astype(np.float64)
            right_n = n - left_n
            left_sum = csum[positions - 1]
            right_sum = total_sum[None, :] - left_sum
            left_sq = csq[positions - 1]
            right_sq = total_sq - left_sq
            left_sse = left_sq - np.sum(left_sum**2, axis=1) / left_n
            right_sse = right_sq - np.sum(right_sum**2, axis=1) / right_n
            gains = parent_sse - (left_sse + right_sse)
            best_idx = int(np.argmax(gains))
            if gains[best_idx] > best[2]:
                pos = positions[best_idx]
                threshold = 0.5 * (sorted_vals[pos - 1] + sorted_vals[min(pos, n - 1)])
                best = (feature, float(threshold), float(gains[best_idx]))
        return best

    # ------------------------------------------------------------- predict
    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.root_ is None:
            raise ConfigurationError("tree has not been fitted")
        X = np.asarray(X, dtype=np.float64)
        out = np.empty((X.shape[0], self.root_.value.shape[0]), dtype=np.float64)
        # Iterative traversal grouping rows per node keeps this vectorised.
        stack: List[Tuple[_Node, np.ndarray]] = [(self.root_, np.arange(X.shape[0]))]
        while stack:
            node, rows = stack.pop()
            if rows.size == 0:
                continue
            if node.is_leaf:
                out[rows] = node.value
                continue
            mask = X[rows, node.feature] <= node.threshold
            stack.append((node.left, rows[mask]))
            stack.append((node.right, rows[~mask]))
        return out

    @property
    def depth(self) -> int:
        def _depth(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root_)


class DecisionStump(RegressionTree):
    """A depth-1 regression tree (classic boosting weak learner)."""

    def __init__(self, min_samples_leaf: int = 10, max_thresholds: int = 16) -> None:
        super().__init__(
            max_depth=1, min_samples_leaf=min_samples_leaf, max_thresholds=max_thresholds
        )


class DecisionTreeBaseline(BaselineClassifier):
    """Classification tree: fits a regression tree to one-hot targets.

    Fitting squared error on one-hot targets is equivalent to minimising the
    Gini impurity for the induced partition, so this reuses
    :class:`RegressionTree` directly and normalises leaf values into class
    probabilities at prediction time.
    """

    name = "decision-tree"

    def __init__(
        self, max_depth: int = 6, min_samples_leaf: int = 20, max_thresholds: int = 16, seed=None
    ) -> None:
        super().__init__()
        self.max_depth = int(max_depth)
        self.min_samples_leaf = int(min_samples_leaf)
        self.max_thresholds = int(max_thresholds)
        self._rng = as_rng(seed)
        self._tree: Optional[RegressionTree] = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        targets = one_hot(y, self.n_classes_)
        self._tree = RegressionTree(
            max_depth=self.max_depth,
            min_samples_leaf=self.min_samples_leaf,
            max_thresholds=self.max_thresholds,
        ).fit(X, targets)

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        raw = self._tree.predict(X)
        raw = np.clip(raw, 0.0, None)
        sums = raw.sum(axis=1, keepdims=True)
        sums[sums <= 0] = 1.0
        return raw / sums
