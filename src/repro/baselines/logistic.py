"""Multinomial logistic regression trained by mini-batch SGD."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines.base import BaselineClassifier
from repro.exceptions import ConfigurationError
from repro.utils.arrays import one_hot, row_softmax
from repro.utils.rng import as_rng

__all__ = ["LogisticRegressionBaseline"]


class LogisticRegressionBaseline(BaselineClassifier):
    """Linear softmax classifier (the weakest sensible baseline).

    Parameters
    ----------
    epochs, batch_size, learning_rate, momentum, weight_decay:
        Standard mini-batch SGD hyper-parameters.
    seed:
        RNG for weight initialisation and shuffling.
    """

    name = "logistic-regression"

    def __init__(
        self,
        epochs: int = 30,
        batch_size: int = 128,
        learning_rate: float = 0.1,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        seed=None,
    ) -> None:
        super().__init__()
        if epochs <= 0 or batch_size <= 0:
            raise ConfigurationError("epochs and batch_size must be positive")
        if learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ConfigurationError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ConfigurationError("weight_decay must be non-negative")
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._rng = as_rng(seed)
        self.weights_: Optional[np.ndarray] = None
        self.bias_: Optional[np.ndarray] = None

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        n, d = X.shape
        k = self.n_classes_
        rng = self._rng
        self.weights_ = rng.normal(0.0, 0.01, size=(d, k))
        self.bias_ = np.zeros(k)
        vel_w = np.zeros_like(self.weights_)
        vel_b = np.zeros_like(self.bias_)
        targets = one_hot(y, k)
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            lr = self.learning_rate / (1.0 + 0.05 * epoch)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, tb = X[idx], targets[idx]
                probs = row_softmax(xb @ self.weights_ + self.bias_)
                grad_logits = (probs - tb) / xb.shape[0]
                grad_w = xb.T @ grad_logits + self.weight_decay * self.weights_
                grad_b = grad_logits.sum(axis=0)
                vel_w = self.momentum * vel_w - lr * grad_w
                vel_b = self.momentum * vel_b - lr * grad_b
                self.weights_ += vel_w
                self.bias_ += vel_b

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        return row_softmax(X @ self.weights_ + self.bias_)
