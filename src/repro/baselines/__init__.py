"""Baseline classifiers for the related-work comparison (Section VI).

The paper situates BCPNN's 75.5-76.4% AUC against the methods evaluated on
the same dataset by Baldi et al. (2014): boosted decision trees, shallow
neural networks (~81.6% AUC) and deep neural networks (~88% AUC).  To
regenerate that comparison on the same split, from-scratch NumPy
implementations of those baselines live here.
"""

from repro.baselines.base import BaselineClassifier
from repro.baselines.logistic import LogisticRegressionBaseline
from repro.baselines.mlp import MLPBaseline, relu, relu_grad, tanh_act, tanh_grad
from repro.baselines.trees import DecisionTreeBaseline, DecisionStump
from repro.baselines.boosting import GradientBoostingBaseline

__all__ = [
    "BaselineClassifier",
    "LogisticRegressionBaseline",
    "MLPBaseline",
    "DecisionTreeBaseline",
    "DecisionStump",
    "GradientBoostingBaseline",
    "relu",
    "relu_grad",
    "tanh_act",
    "tanh_grad",
]
