"""Multi-layer perceptrons with backpropagation (shallow and deep baselines).

Baldi et al. trained a one-hidden-layer network ("shallow NN", ~81.6% AUC on
the real HIGGS set) and a five-hidden-layer network ("DNN", ~88% AUC).
:class:`MLPBaseline` reproduces both shapes depending on ``hidden_layers``.
The implementation is plain NumPy: dense layers, ReLU/tanh activations,
softmax cross-entropy loss, mini-batch SGD with momentum, optional dropout.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines.base import BaselineClassifier
from repro.exceptions import ConfigurationError
from repro.utils.arrays import one_hot, row_softmax
from repro.utils.rng import as_rng

__all__ = ["MLPBaseline", "relu", "relu_grad", "tanh_act", "tanh_grad"]


def relu(x: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(x, 0.0)


def relu_grad(pre: np.ndarray) -> np.ndarray:
    """Derivative of ReLU with respect to its pre-activation."""
    return (pre > 0).astype(np.float64)


def tanh_act(x: np.ndarray) -> np.ndarray:
    """Hyperbolic tangent activation."""
    return np.tanh(x)


def tanh_grad(pre: np.ndarray) -> np.ndarray:
    """Derivative of tanh with respect to its pre-activation."""
    return 1.0 - np.tanh(pre) ** 2


_ACTIVATIONS = {"relu": (relu, relu_grad), "tanh": (tanh_act, tanh_grad)}


class MLPBaseline(BaselineClassifier):
    """Fully-connected feed-forward classifier trained with backprop.

    Parameters
    ----------
    hidden_layers:
        Sizes of the hidden layers, e.g. ``(300,)`` for the shallow baseline
        or ``(300, 300, 300, 300, 300)`` for the deep one.
    activation:
        ``"relu"`` or ``"tanh"``.
    dropout:
        Dropout probability applied to hidden activations during training.
    epochs, batch_size, learning_rate, momentum, weight_decay:
        Mini-batch SGD hyper-parameters; the learning rate decays as 1/(1+kt).
    """

    name = "mlp"

    def __init__(
        self,
        hidden_layers: Sequence[int] = (300,),
        activation: str = "relu",
        dropout: float = 0.0,
        epochs: int = 30,
        batch_size: int = 128,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 1e-4,
        seed=None,
    ) -> None:
        super().__init__()
        hidden_layers = tuple(int(h) for h in hidden_layers)
        if not hidden_layers or any(h <= 0 for h in hidden_layers):
            raise ConfigurationError("hidden_layers must be a non-empty tuple of positive ints")
        if activation not in _ACTIVATIONS:
            raise ConfigurationError(f"activation must be one of {sorted(_ACTIVATIONS)}")
        if not 0.0 <= dropout < 1.0:
            raise ConfigurationError("dropout must be in [0, 1)")
        if epochs <= 0 or batch_size <= 0 or learning_rate <= 0:
            raise ConfigurationError("epochs, batch_size and learning_rate must be positive")
        if not 0 <= momentum < 1 or weight_decay < 0:
            raise ConfigurationError("invalid momentum or weight_decay")
        self.hidden_layers = hidden_layers
        self.activation = activation
        self.dropout = float(dropout)
        self.epochs = int(epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._rng = as_rng(seed)
        self.weights_: List[np.ndarray] = []
        self.biases_: List[np.ndarray] = []
        self.name = f"mlp-{len(hidden_layers)}x{hidden_layers[0]}"

    # --------------------------------------------------------------- fitting
    def _init_parameters(self, n_features: int) -> None:
        sizes = [n_features, *self.hidden_layers, self.n_classes_]
        self.weights_ = []
        self.biases_ = []
        for fan_in, fan_out in zip(sizes[:-1], sizes[1:]):
            limit = np.sqrt(6.0 / (fan_in + fan_out))
            self.weights_.append(self._rng.uniform(-limit, limit, size=(fan_in, fan_out)))
            self.biases_.append(np.zeros(fan_out))

    def _forward(
        self, X: np.ndarray, training: bool
    ) -> Tuple[np.ndarray, List[np.ndarray], List[np.ndarray], List[Optional[np.ndarray]]]:
        act_fn, _ = _ACTIVATIONS[self.activation]
        pre_list: List[np.ndarray] = []
        post_list: List[np.ndarray] = [X]
        drop_masks: List[Optional[np.ndarray]] = []
        h = X
        for layer in range(len(self.weights_) - 1):
            pre = h @ self.weights_[layer] + self.biases_[layer]
            post = act_fn(pre)
            mask = None
            if training and self.dropout > 0:
                mask = (self._rng.random(post.shape) >= self.dropout) / (1.0 - self.dropout)
                post = post * mask
            pre_list.append(pre)
            post_list.append(post)
            drop_masks.append(mask)
            h = post
        logits = h @ self.weights_[-1] + self.biases_[-1]
        return logits, pre_list, post_list, drop_masks

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        self._init_parameters(X.shape[1])
        _, grad_fn = _ACTIVATIONS[self.activation]
        targets = one_hot(y, self.n_classes_)
        vel_w = [np.zeros_like(w) for w in self.weights_]
        vel_b = [np.zeros_like(b) for b in self.biases_]
        n = X.shape[0]
        for epoch in range(self.epochs):
            order = self._rng.permutation(n)
            lr = self.learning_rate / (1.0 + 0.05 * epoch)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                xb, tb = X[idx], targets[idx]
                logits, pre_list, post_list, drop_masks = self._forward(xb, training=True)
                probs = row_softmax(logits)
                delta = (probs - tb) / xb.shape[0]
                # Backward pass.
                grads_w = [None] * len(self.weights_)
                grads_b = [None] * len(self.biases_)
                grads_w[-1] = post_list[-1].T @ delta + self.weight_decay * self.weights_[-1]
                grads_b[-1] = delta.sum(axis=0)
                upstream = delta @ self.weights_[-1].T
                for layer in range(len(self.weights_) - 2, -1, -1):
                    if drop_masks[layer] is not None:
                        upstream = upstream * drop_masks[layer]
                    local = upstream * grad_fn(pre_list[layer])
                    grads_w[layer] = (
                        post_list[layer].T @ local + self.weight_decay * self.weights_[layer]
                    )
                    grads_b[layer] = local.sum(axis=0)
                    if layer > 0:
                        upstream = local @ self.weights_[layer].T
                # SGD with momentum.
                for layer in range(len(self.weights_)):
                    vel_w[layer] = self.momentum * vel_w[layer] - lr * grads_w[layer]
                    vel_b[layer] = self.momentum * vel_b[layer] - lr * grads_b[layer]
                    self.weights_[layer] += vel_w[layer]
                    self.biases_[layer] += vel_b[layer]

    def _predict_proba(self, X: np.ndarray) -> np.ndarray:
        logits, _, _, _ = self._forward(X, training=False)
        return row_softmax(logits)
