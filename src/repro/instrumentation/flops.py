"""Analytical cost model of the BCPNN training step (Section II-B).

The paper argues that rate-based BCPNN maps onto GEMMs and therefore onto
BLAS / accelerators.  This module quantifies that: for a layer with
``N_in`` input units, ``H`` hidden HCUs of ``M`` MCUs, batch size ``B`` and
receptive-field density ``d``, the per-batch cost decomposes into

* support GEMM:                ``2 * B * N_in * H*M`` FLOPs,
* per-HCU softmax:             ``~5 * B * H*M`` FLOPs,
* co-activation GEMM:          ``2 * B * N_in * H*M`` FLOPs,
* trace EMA update:            ``~4 * N_in * H*M`` FLOPs,
* weight recomputation (logs): ``~3 * N_in * H*M`` FLOPs (counting a log as 1),

and structural plasticity (once per epoch) is ``O(N_in * H*M)`` — which is
why the paper observes that the receptive-field size barely affects training
time while capacity (H, M) drives it linearly.  The model also reports bytes
touched, giving a rough arithmetic-intensity estimate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.exceptions import ConfigurationError

__all__ = ["CostBreakdown", "BCPNNCostModel"]


@dataclass(frozen=True)
class CostBreakdown:
    """FLOPs / bytes for one training batch of one layer."""

    support_gemm_flops: float
    softmax_flops: float
    statistics_gemm_flops: float
    trace_update_flops: float
    weight_update_flops: float
    bytes_touched: float

    @property
    def total_flops(self) -> float:
        return (
            self.support_gemm_flops
            + self.softmax_flops
            + self.statistics_gemm_flops
            + self.trace_update_flops
            + self.weight_update_flops
        )

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte touched (roofline-style figure of merit)."""
        return self.total_flops / self.bytes_touched if self.bytes_touched > 0 else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "support_gemm_flops": self.support_gemm_flops,
            "softmax_flops": self.softmax_flops,
            "statistics_gemm_flops": self.statistics_gemm_flops,
            "trace_update_flops": self.trace_update_flops,
            "weight_update_flops": self.weight_update_flops,
            "total_flops": self.total_flops,
            "bytes_touched": self.bytes_touched,
            "arithmetic_intensity": self.arithmetic_intensity,
        }


class BCPNNCostModel:
    """Cost model parameterised by the layer/network shape.

    Parameters
    ----------
    n_input_units:
        Total input units (e.g. 280 for the Higgs one-hot encoding).
    n_hypercolumns, n_minicolumns:
        Hidden layer capacity.
    batch_size:
        Samples per training batch.
    density:
        Receptive-field density (affects only the *effective* GEMM work when
        a sparse implementation is assumed; the dense-GEMM StreamBrain
        formulation performs the full product regardless, which is the
        default here).
    dtype_bytes:
        Bytes per scalar (8 for float64, 4 for float32, 2 for float16).
    sparse_gemm:
        If True, scale GEMM work by ``density`` (what a gather-based kernel
        would do); if False (default) model the dense masked GEMM.
    """

    def __init__(
        self,
        n_input_units: int,
        n_hypercolumns: int,
        n_minicolumns: int,
        batch_size: int,
        density: float = 1.0,
        dtype_bytes: int = 8,
        sparse_gemm: bool = False,
    ) -> None:
        if min(n_input_units, n_hypercolumns, n_minicolumns, batch_size) <= 0:
            raise ConfigurationError("all shape parameters must be positive")
        if not 0.0 <= density <= 1.0:
            raise ConfigurationError("density must be in [0, 1]")
        if dtype_bytes not in (2, 4, 8):
            raise ConfigurationError("dtype_bytes must be 2, 4 or 8")
        self.n_input_units = int(n_input_units)
        self.n_hypercolumns = int(n_hypercolumns)
        self.n_minicolumns = int(n_minicolumns)
        self.batch_size = int(batch_size)
        self.density = float(density)
        self.dtype_bytes = int(dtype_bytes)
        self.sparse_gemm = bool(sparse_gemm)

    # ----------------------------------------------------------- components
    @property
    def n_hidden_units(self) -> int:
        return self.n_hypercolumns * self.n_minicolumns

    @property
    def n_weights(self) -> int:
        return self.n_input_units * self.n_hidden_units

    def batch_cost(self) -> CostBreakdown:
        """Cost of one training batch (forward + statistics + trace/weight update)."""
        b, n_in, n_hid = self.batch_size, self.n_input_units, self.n_hidden_units
        gemm_scale = self.density if self.sparse_gemm else 1.0
        support = 2.0 * b * n_in * n_hid * gemm_scale
        softmax = 5.0 * b * n_hid
        statistics = 2.0 * b * n_in * n_hid * gemm_scale
        trace = 4.0 * (n_in * n_hid + n_in + n_hid)
        weight = 3.0 * n_in * n_hid
        bytes_touched = self.dtype_bytes * (
            b * n_in  # inputs read twice is ignored; count once
            + b * n_hid * 2  # activations written + read
            + self.n_weights * 4  # weights read (GEMM) + p_ij read/write + weights write
            + n_in * 2
            + n_hid * 2
        )
        return CostBreakdown(
            support_gemm_flops=support,
            softmax_flops=softmax,
            statistics_gemm_flops=statistics,
            trace_update_flops=trace,
            weight_update_flops=weight,
            bytes_touched=float(bytes_touched),
        )

    def epoch_cost(self, n_samples: int) -> CostBreakdown:
        """Cost of one epoch over ``n_samples`` (plus one plasticity update)."""
        if n_samples <= 0:
            raise ConfigurationError("n_samples must be positive")
        n_batches = max(1, int(round(n_samples / self.batch_size)))
        batch = self.batch_cost()
        plasticity_flops = 4.0 * self.n_weights  # MI scores + block reductions
        return CostBreakdown(
            support_gemm_flops=batch.support_gemm_flops * n_batches,
            softmax_flops=batch.softmax_flops * n_batches,
            statistics_gemm_flops=batch.statistics_gemm_flops * n_batches,
            trace_update_flops=batch.trace_update_flops * n_batches,
            weight_update_flops=batch.weight_update_flops * n_batches + plasticity_flops,
            bytes_touched=batch.bytes_touched * n_batches,
        )

    def memory_bytes(self) -> float:
        """Resident model state: traces + weights + mask."""
        return float(
            self.dtype_bytes
            * (2 * self.n_weights + 2 * (self.n_input_units + self.n_hidden_units))
            + self.n_hypercolumns * self.n_input_units  # mask (stored as float64/8 but negligible)
        )

    def scaling_table(self, hcu_values, mcu_values, n_samples: int):
        """Predicted epoch FLOPs for a grid of (HCU, MCU) capacities.

        Mirrors the structure of Fig. 3: rows are MCU counts, columns HCU
        counts, entries total FLOPs per epoch.
        """
        table = {}
        for mcus in mcu_values:
            row = {}
            for hcus in hcu_values:
                model = BCPNNCostModel(
                    self.n_input_units, int(hcus), int(mcus), self.batch_size,
                    self.density, self.dtype_bytes, self.sparse_gemm,
                )
                row[int(hcus)] = model.epoch_cost(n_samples).total_flops
            table[int(mcus)] = row
        return table
