"""Measurement of the pipelined training engine vs the serial fused loop.

Shared by ``benchmarks/bench_kernels.py`` (which records the result in the
``pipelined_training`` section of ``BENCH_kernels.json`` and gates CI on it)
and the ``repro-benchmark --pipeline`` CLI.  Both sides of the comparison
drive a real :class:`~repro.core.layers.StructuralPlasticityLayer` through a
real :class:`~repro.datasets.stream.BatchStream`:

* the **serial** side replicates ``Network._train_hidden_layer``'s
  non-pipelined inner loop exactly — synchronous gathers, one fused engine
  dispatch plus an unconditional weight refresh per batch, the entropy
  reduction inline;
* the **pipelined** side is the shipped
  :func:`repro.engine.pipeline.train_layer_pipelined` loop with
  double-buffered workspaces, prefetched gathers, the entropy reduction on
  the worker thread, and the engine's stale-weights caching at the
  configured ``weight_refresh_tol``.

The deterministic ``"softmax"`` competition keeps both runs comparable, and
each timing repeat trains a freshly built layer so trace state cannot leak
between repeats.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

__all__ = ["measure_pipelined_training"]


def _one_hot(n_rows: int, sizes, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    x = np.zeros((n_rows, int(np.sum(sizes))))
    offset = 0
    for size in sizes:
        winners = rng.integers(0, size, size=n_rows)
        x[np.arange(n_rows), offset + winners] = 1.0
        offset += size
    return x


def measure_pipelined_training(
    n_samples: int = 4096,
    batch_size: int = 64,
    n_minicolumns: int = 300,
    n_input_hypercolumns: int = 28,
    bins: int = 10,
    epochs: int = 3,
    repeats: int = 4,
    weight_refresh_tol: float = 0.01,
    taupdt: float = 0.01,
    seed: int = 0,
    backend: Optional[str] = "numpy",
) -> Dict[str, object]:
    """Best-of-``repeats`` per-batch seconds: serial vs pipelined training.

    The default configuration is the Higgs-sized standard the rest of
    ``BENCH_kernels.json`` uses (280 input units, 1x300 hidden units) at a
    streaming batch size of 64: the per-batch ``traces_to_weights`` refresh
    is batch-size-independent, so the small-batch (online/streaming) regime
    is exactly where stale-weights caching pays — which is the regime this
    system is named for.  ``weight_refresh_tol`` and the batch size are part
    of the measured configuration and are recorded in the result, so the CI
    gate checks exactly the configuration the JSON publishes.
    """
    from repro.core.hyperparams import BCPNNHyperParameters
    from repro.core.layers import InputSpec, StructuralPlasticityLayer
    from repro.datasets.stream import BatchStream
    from repro.engine.pipeline import (
        helper_threads_available,
        mean_activation_entropy,
        train_layer_pipelined,
    )

    input_spec = InputSpec.uniform(int(n_input_hypercolumns), int(bins))
    x = _one_hot(int(n_samples), input_spec.hypercolumn_sizes, seed=seed + 1)
    hyperparams = BCPNNHyperParameters(
        taupdt=float(taupdt), density=0.5, competition="softmax"
    )

    def fresh_layer() -> StructuralPlasticityLayer:
        # The execution plan is pinned to dense: this benchmark isolates the
        # pipelined *scheduler* against the serial loop on one fixed plan
        # (at density 0.5 the sparse auto mode would otherwise shrink both
        # sides' refresh cost and with it the stale-weights headroom the
        # section has tracked since it was introduced).  The sparse plan has
        # its own section (``sparse_density_sweep``).
        layer = StructuralPlasticityLayer(
            1, int(n_minicolumns), hyperparams=hyperparams, backend=backend,
            sparse="off", seed=seed,
        )
        layer.build(input_spec)
        return layer

    n_batches = max(1, -(-int(n_samples) // int(batch_size))) * int(epochs)

    def run_serial() -> float:
        layer = fresh_layer()
        stream = BatchStream(
            x, batch_size=int(batch_size), shuffle=True, rng=np.random.default_rng(seed + 2)
        )
        start = time.perf_counter()
        for epoch in range(int(epochs)):
            entropies = []
            for batch in stream:
                activations = layer.train_batch(batch.x)
                entropies.append(mean_activation_entropy(activations))
            layer.end_epoch(epoch)
        return time.perf_counter() - start

    # The pipelined side mirrors exactly what Network.fit(pipeline=True)
    # ships: helper threads (prefetch, entropy worker, double buffering)
    # only where they can genuinely overlap, the degenerate inline schedule
    # on single-core machines — plus stale-weights caching either way.
    overlap = helper_threads_available()

    def run_pipelined() -> float:
        layer = fresh_layer()
        layer.configure_execution(
            n_buffers=2 if overlap else 1, weight_refresh_tol=float(weight_refresh_tol)
        )
        stream = BatchStream(
            x,
            batch_size=int(batch_size),
            shuffle=True,
            rng=np.random.default_rng(seed + 2),
            prefetch=2 if overlap else 0,
        )
        start = time.perf_counter()
        train_layer_pipelined(layer, stream, int(epochs))
        elapsed = time.perf_counter() - start
        layer.flush_weights()
        return elapsed

    # Warm up BLAS/thread pools once, then interleave the repeats
    # (serial, pipelined, serial, pipelined, ...) so a slow drift in
    # machine load hits both sides equally instead of biasing whichever
    # side runs last.
    run_serial()
    run_pipelined()
    serial_times = []
    pipelined_times = []
    for _ in range(int(repeats)):
        serial_times.append(run_serial())
        pipelined_times.append(run_pipelined())
    serial_seconds = min(serial_times)
    pipelined_seconds = min(pipelined_times)

    # Count the weight refreshes the stale-weights cache actually performed.
    probe = fresh_layer()
    probe.configure_execution(
        n_buffers=2 if overlap else 1, weight_refresh_tol=float(weight_refresh_tol)
    )
    stream = BatchStream(
        x, batch_size=int(batch_size), shuffle=True,
        rng=np.random.default_rng(seed + 2), prefetch=2 if overlap else 0,
    )
    before = probe.backend.stats.weight_updates
    train_layer_pipelined(probe, stream, int(epochs))
    probe.flush_weights()
    refreshes = int(probe.backend.stats.weight_updates - before)

    return {
        "config": {
            "n_input": input_spec.n_units,
            "n_hidden": int(n_minicolumns),
            "batch_size": int(batch_size),
            "n_samples": int(n_samples),
            "epochs": int(epochs),
            "repeats": int(repeats),
            "taupdt": float(taupdt),
            "weight_refresh_tol": float(weight_refresh_tol),
            "competition": "softmax",
            "backend": backend or "numpy",
            "helper_threads": bool(overlap),
        },
        "serial_seconds_per_batch": serial_seconds / n_batches,
        "pipelined_seconds_per_batch": pipelined_seconds / n_batches,
        "speedup": serial_seconds / max(pipelined_seconds, 1e-12),
        "weight_refreshes": refreshes,
        "batches": n_batches,
    }
