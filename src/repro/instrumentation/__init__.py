"""Instrumentation: timers, FLOP/byte cost model and report formatting."""

from repro.instrumentation.timers import Timer, RepeatTimer, TimingStatistics
from repro.instrumentation.flops import BCPNNCostModel, CostBreakdown
from repro.instrumentation.overlap_bench import measure_comm_overlap
from repro.instrumentation.pipeline_bench import measure_pipelined_training
from repro.instrumentation.reports import format_table, format_comparison, dump_json_report
from repro.instrumentation.serving_bench import measure_serving_latency
from repro.instrumentation.sparse_bench import measure_sparse_density_sweep

__all__ = [
    "Timer",
    "RepeatTimer",
    "TimingStatistics",
    "BCPNNCostModel",
    "CostBreakdown",
    "format_table",
    "format_comparison",
    "dump_json_report",
    "measure_comm_overlap",
    "measure_pipelined_training",
    "measure_serving_latency",
    "measure_sparse_density_sweep",
]
