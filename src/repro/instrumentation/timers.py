"""Wall-clock timing utilities used by experiments and benchmarks."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Timer", "RepeatTimer", "TimingStatistics"]


@dataclass
class TimingStatistics:
    """Summary of repeated timing measurements (seconds)."""

    samples: List[float]

    @property
    def n(self) -> int:
        return len(self.samples)

    @property
    def mean(self) -> float:
        return float(np.mean(self.samples)) if self.samples else float("nan")

    @property
    def std(self) -> float:
        return float(np.std(self.samples)) if self.samples else float("nan")

    @property
    def minimum(self) -> float:
        return float(np.min(self.samples)) if self.samples else float("nan")

    @property
    def maximum(self) -> float:
        return float(np.max(self.samples)) if self.samples else float("nan")

    @property
    def total(self) -> float:
        return float(np.sum(self.samples)) if self.samples else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": float(self.n),
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "total": self.total,
        }


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed > 0
    True
    """

    def __init__(self, name: str = "timer") -> None:
        self.name = name
        self.start_time: Optional[float] = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start_time = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.start_time is not None:
            self.elapsed = time.perf_counter() - self.start_time

    def restart(self) -> None:
        self.start_time = time.perf_counter()
        self.elapsed = 0.0


class RepeatTimer:
    """Run a callable several times and collect timing statistics.

    Parameters
    ----------
    repeats:
        Number of timed runs.
    warmup:
        Untimed runs performed first (to populate caches / JIT-like effects).
    """

    def __init__(self, repeats: int = 5, warmup: int = 1) -> None:
        if repeats <= 0:
            raise ConfigurationError("repeats must be positive")
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        self.repeats = int(repeats)
        self.warmup = int(warmup)

    def measure(self, func: Callable[[], object]) -> TimingStatistics:
        for _ in range(self.warmup):
            func()
        samples: List[float] = []
        for _ in range(self.repeats):
            start = time.perf_counter()
            func()
            samples.append(time.perf_counter() - start)
        return TimingStatistics(samples=samples)
