"""Measurement of the block-sparse execution plan vs the dense fused path.

Shared by ``benchmarks/bench_kernels.py`` (which records the result in the
``sparse_density_sweep`` section of ``BENCH_kernels.json`` and gates CI on it
through ``--check-sparse``) and the ``repro-benchmark --sparse`` CLI.

Three comparisons run per density, all through the shipped engine/backend
paths:

* **fused training step** (the gated number) — one complete engine step per
  batch: the trace->weight refresh (full-matrix ``traces_to_weights`` vs
  packed-slab ``pack_weights``) plus the fused forward/statistics/EMA
  dispatch (dense masked GEMM vs gather-GEMM).  This is exactly the step
  the ``fused_vs_unfused`` and ``fused_training_backends`` sections time,
  so the sparse numbers are directly comparable with the rest of the file.
  The competition rule and the epoch-boundary plasticity are excluded: they
  are learning-rule costs identical in both plans (the end-to-end ratio
  including them is recorded separately as
  ``train_batch_end_to_end_speedup``).
* **end-to-end ``train_batch``** (informational) — the full layer training
  loop including input validation and the competition rule, dense vs
  sparse.
* **serving** (the second gated number) —
  :class:`~repro.serving.StreamingPredictor` throughput over a large input,
  dense vs sparse.

The training batch size defaults to 32 — the online/streaming regime this
system is named for, where the batch-size-independent refresh dominates the
per-batch cost and the packed refresh pays the most — and serving streams
at batch 256 (the ``streaming_inference`` standard).  Ratios are intended
to be measured with BLAS pinned to one thread (the CI perf-gate job sets
``OPENBLAS_NUM_THREADS=1``): they then track kernel efficiency instead of
the runner's core count and stay comparable with the committed JSON.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from repro.instrumentation.pipeline_bench import _one_hot

__all__ = ["measure_sparse_density_sweep", "SPARSE_SWEEP_DENSITIES"]

#: The densities the committed ``BENCH_kernels.json`` sweep publishes.
SPARSE_SWEEP_DENSITIES = (1.0, 0.5, 0.3, 0.1)


class _TraceBuffers:
    """Bare trace arrays matching the ProbabilityTraces layout."""

    def __init__(self, p_i, p_j, p_ij):
        self.p_i = p_i.copy()
        self.p_j = p_j.copy()
        self.p_ij = p_ij.copy()
        self.updates_seen = 0


def _time_loop(step, repeats: int, inner: int, warmup: int = 3) -> float:
    for _ in range(warmup):
        step()
    best = float("inf")
    for _ in range(int(repeats)):
        start = time.perf_counter()
        for _ in range(int(inner)):
            step()
        best = min(best, (time.perf_counter() - start) / int(inner))
    return best


def measure_sparse_density_sweep(
    densities: Sequence[float] = SPARSE_SWEEP_DENSITIES,
    train_batch_size: int = 32,
    serve_batch_size: int = 256,
    serve_samples: int = 8192,
    n_minicolumns: int = 300,
    n_input_hypercolumns: int = 28,
    bins: int = 10,
    repeats: int = 5,
    inner: int = 30,
    taupdt: float = 0.01,
    seed: int = 0,
    backend: Optional[str] = "numpy",
) -> Dict[str, object]:
    """Best-of-``repeats`` dense vs sparse timings across mask densities.

    Returns per-density fused-step seconds/batch (dense vs sparse), the
    end-to-end ``train_batch`` speedup, and serving rows/s (dense vs
    sparse) — the fused-step and serving speedups are the numbers the
    ``--check-sparse`` CI gate asserts at density 0.3.
    """
    from repro import kernels
    from repro.backend import get_backend
    from repro.core import BCPNNClassifier, Network
    from repro.core.hyperparams import BCPNNHyperParameters
    from repro.core.layers import InputSpec, StructuralPlasticityLayer
    from repro.datasets.stream import BatchStream
    from repro.engine import ExecutionPlan, LayerEngine

    input_spec = InputSpec.uniform(int(n_input_hypercolumns), int(bins))
    input_sizes = list(input_spec.hypercolumn_sizes)
    n_input = input_spec.n_units
    hidden_sizes = [int(n_minicolumns)]
    n_hidden = int(n_minicolumns)
    B = int(train_batch_size)
    x_train = _one_hot(B, input_sizes, seed=seed + 1)
    x_epoch = _one_hot(2048, input_sizes, seed=seed + 5)
    x_serve = _one_hot(int(serve_samples), input_sizes, seed=seed + 2)
    compute = get_backend(backend)

    def layer_mask(density: float) -> np.ndarray:
        rng = np.random.default_rng(seed + 3)
        n_active = max(1, int(round(float(density) * int(n_input_hypercolumns))))
        n_active = min(n_active, int(n_input_hypercolumns))
        mask_hc = np.zeros((int(n_input_hypercolumns), 1))
        mask_hc[rng.choice(int(n_input_hypercolumns), n_active, replace=False), 0] = 1.0
        return mask_hc

    def fused_step_seconds(density: float):
        """Dense vs sparse seconds of the complete fused training step."""
        mask_hc = layer_mask(density)
        mask = kernels.expand_mask(mask_hc, input_sizes, hidden_sizes)
        layout = kernels.SparseLayout(mask_hc, input_sizes, hidden_sizes)
        p_i = x_train.mean(axis=0) + 1e-3
        p_j = np.full(n_hidden, 1.0 / n_hidden)
        p_ij = np.outer(p_i, p_j)

        dense_traces = _TraceBuffers(p_i, p_j, p_ij)
        dense_engine = LayerEngine(
            compute, ExecutionPlan(n_input, tuple(hidden_sizes), B, sparse="off")
        )
        weight_buf = np.empty((n_input, n_hidden))
        bias_buf = np.empty(n_hidden)

        def dense_step():
            compute.traces_to_weights(
                dense_traces.p_i, dense_traces.p_j, dense_traces.p_ij,
                out_weights=weight_buf, out_bias=bias_buf,
            )
            dense_engine.note_weights_refreshed()
            dense_engine.fused_update(
                x_train, weight_buf, bias_buf, mask, 1.0, dense_traces, taupdt
            )

        sparse_traces = _TraceBuffers(p_i, p_j, p_ij)
        sparse_engine = LayerEngine(
            compute, ExecutionPlan(n_input, tuple(hidden_sizes), B, sparse="on")
        )
        packed_flat = np.empty(layout.packed_size)
        packed_blocks = layout.block_views(packed_flat)
        sparse_bias = np.empty(n_hidden)
        bundle = kernels.SparseWeights(layout, packed_blocks, packed_flat)

        def sparse_step():
            compute.pack_weights(
                sparse_traces.p_i, sparse_traces.p_j, sparse_traces.p_ij, layout,
                out_blocks=packed_blocks, out_bias=sparse_bias,
            )
            sparse_engine.note_weights_refreshed()
            sparse_engine.fused_update(
                x_train, None, sparse_bias, mask, 1.0, sparse_traces, taupdt,
                sparse=bundle,
            )

        # Interleave the timing repeats so load drift hits both sides alike.
        dense_best = sparse_best = float("inf")
        _time_loop(dense_step, repeats=1, inner=5)
        _time_loop(sparse_step, repeats=1, inner=5)
        for _ in range(int(repeats)):
            dense_best = min(dense_best, _time_loop(dense_step, 1, inner, warmup=0))
            sparse_best = min(sparse_best, _time_loop(sparse_step, 1, inner, warmup=0))
        return dense_best, sparse_best

    def train_batch_seconds(density: float, sparse: str) -> float:
        """End-to-end ``layer.train_batch`` loop (competition rule included)."""
        hyperparams = BCPNNHyperParameters(
            taupdt=float(taupdt), density=float(density), competition="softmax"
        )
        layer = StructuralPlasticityLayer(
            1, n_hidden, hyperparams=hyperparams, backend=backend, sparse=sparse, seed=seed
        )
        layer.build(input_spec)
        stream = BatchStream(
            x_epoch, batch_size=B, shuffle=True, rng=np.random.default_rng(seed + 4)
        )
        n_batches = -(-x_epoch.shape[0] // B)
        for batch in stream:  # warm up engines and the first-batch calibration
            layer.train_batch(batch.x)
        best = float("inf")
        for _ in range(int(repeats)):
            start = time.perf_counter()
            for batch in stream:
                layer.train_batch(batch.x)
            best = min(best, (time.perf_counter() - start) / n_batches)
        layer.flush_weights()
        return best

    def serve_rates(density: float):
        """Interleaved dense/sparse serving throughput for one density."""
        from repro.serving import StreamingPredictor

        predictors = {}
        for sparse in ("off", "on"):
            network = Network(
                seed=seed, name=f"sparse-bench-{density:g}-{sparse}", sparse=sparse
            )
            network.add(
                StructuralPlasticityLayer(
                    1, n_hidden, density=float(density), sparse=sparse, seed=seed + 4
                )
            )
            network.add(BCPNNClassifier(n_classes=2))
            network.build(input_spec)
            predictor = StreamingPredictor(
                network, batch_size=int(serve_batch_size), backend=backend
            )
            predictor.predict_stream(x_serve[: 2 * int(serve_batch_size)])  # warm up
            predictors[sparse] = predictor
        best = {"off": float("inf"), "on": float("inf")}
        # Interleave the repeats so machine-load drift hits both plans alike.
        for _ in range(int(repeats)):
            for sparse, predictor in predictors.items():
                start = time.perf_counter()
                predictor.predict_stream(x_serve)
                best[sparse] = min(best[sparse], time.perf_counter() - start)
        n = int(serve_samples)
        return n / max(best["off"], 1e-12), n / max(best["on"], 1e-12)

    rows = []
    for density in densities:
        dense_step, sparse_step = fused_step_seconds(density)
        e2e_dense = train_batch_seconds(density, "off")
        e2e_sparse = train_batch_seconds(density, "on")
        dense_serve, sparse_serve = serve_rates(density)
        rows.append(
            {
                "density": float(density),
                "dense_train_seconds_per_batch": dense_step,
                "sparse_train_seconds_per_batch": sparse_step,
                "train_speedup": dense_step / max(sparse_step, 1e-12),
                "train_batch_end_to_end_speedup": e2e_dense / max(e2e_sparse, 1e-12),
                "dense_serving_rows_per_second": dense_serve,
                "sparse_serving_rows_per_second": sparse_serve,
                "serving_speedup": sparse_serve / max(dense_serve, 1e-12),
            }
        )
    return {
        "config": {
            "n_input": n_input,
            "n_hidden": n_hidden,
            "train_batch_size": B,
            "serve_batch_size": int(serve_batch_size),
            "serve_samples": int(serve_samples),
            "repeats": int(repeats),
            "inner_iterations": int(inner),
            "taupdt": float(taupdt),
            "backend": backend or "numpy",
        },
        "densities": rows,
    }
