"""Measurement of communication-overlapped data-parallel training.

Shared by ``benchmarks/bench_kernels.py`` (which records the result in the
``comm_overlap`` section of ``BENCH_kernels.json`` and gates CI on it via
``--check-overlap``).  Two measurements:

* **blocking vs overlapped** — the same Higgs-sized hidden layer trained
  through :class:`~repro.backend.distributed.DistributedTrainer` at two
  ranks on the process transport, once with the historical blocking
  schedule (``comm_overlap="off"``, dense payloads) and once with the
  software-pipelined schedule (``comm_overlap="on"`` + sparse-packed
  payloads on the frozen mask).  Both sides run the same stale-weights
  tolerance, so the comparison isolates the communication schedule;
* **dense vs sparse payload sweep** — the per-batch allreduce payload size
  with and without sparse packing at several mask densities, read from the
  training epoch logs (payload size is schedule-independent, so the sweep
  runs on the serial transport).

The mask is frozen for the whole run (``mask_update_period`` larger than
the epoch count), the regime sparse payloads are specified for.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["measure_comm_overlap"]


def _train_once(
    comm,
    x: np.ndarray,
    input_spec,
    n_minicolumns: int,
    density: float,
    epochs: int,
    batch_size: int,
    weight_refresh_tol: float,
    comm_overlap: str,
    sparse_payload: str,
    seed: int,
    backend: Optional[str],
):
    from repro.backend.distributed import DistributedTrainer
    from repro.core.hyperparams import BCPNNHyperParameters
    from repro.core.layers import StructuralPlasticityLayer

    hyperparams = BCPNNHyperParameters(
        taupdt=0.01, density=float(density), mask_update_period=10_000
    )
    layer = StructuralPlasticityLayer(
        1, int(n_minicolumns), hyperparams=hyperparams, backend=backend, seed=seed
    )
    layer.build(input_spec)
    trainer = DistributedTrainer(comm)
    calls_before = int(comm.collective_calls["iallreduce"])
    start = time.perf_counter()
    report = trainer.train_layer(
        layer,
        x,
        epochs=int(epochs),
        batch_size=int(batch_size),
        rng=np.random.default_rng(seed + 2),
        shuffle=True,
        weight_refresh_tol=float(weight_refresh_tol),
        comm_overlap=comm_overlap,
        sparse_payload=sparse_payload,
    )
    elapsed = time.perf_counter() - start
    # Counters on a long-lived pool accumulate across runs; report the delta.
    report.extra["iallreduce_calls"] = (
        int(comm.collective_calls["iallreduce"]) - calls_before
    )
    return elapsed, report


def measure_comm_overlap(
    n_samples: int = 4096,
    batch_size: int = 128,
    n_minicolumns: int = 300,
    n_input_hypercolumns: int = 28,
    bins: int = 10,
    density: float = 0.3,
    epochs: int = 2,
    repeats: int = 3,
    ranks: int = 2,
    weight_refresh_tol: float = 0.01,
    payload_densities: Sequence[float] = (1.0, 0.3),
    seed: int = 0,
    backend: Optional[str] = "numpy",
    timeout: float = 120.0,
) -> Dict[str, object]:
    """Best-of-``repeats`` seconds: blocking vs overlapped comm training.

    The blocking side is the historical schedule (synchronous dense
    allreduce every batch); the overlapped side issues the reduction
    nonblocking, computes the next batch before waiting, and packs only
    active-row statistics (the mask is frozen for the whole run).  Both
    sides run the identical stale-weights tolerance and the process
    transport at ``ranks`` ranks, so the speedup isolates the
    communication schedule + payload packing.
    """
    from repro.comm import ProcessComm
    from repro.core.layers import InputSpec

    input_spec = InputSpec.uniform(int(n_input_hypercolumns), int(bins))
    rng = np.random.default_rng(seed + 1)
    x = np.zeros((int(n_samples), input_spec.n_units))
    offset = 0
    for size in input_spec.hypercolumn_sizes:
        winners = rng.integers(0, size, size=int(n_samples))
        x[np.arange(int(n_samples)), offset + winners] = 1.0
        offset += size

    n_batches = max(1, -(-int(n_samples) // int(batch_size))) * int(epochs)

    comm = ProcessComm(int(ranks), timeout=timeout)
    try:
        # Warm both paths once (BLAS pools, worker imports), then interleave
        # the repeats so machine-load drift hits both sides equally.
        common = dict(
            x=x, input_spec=input_spec, n_minicolumns=n_minicolumns,
            density=density, epochs=epochs, batch_size=batch_size,
            weight_refresh_tol=weight_refresh_tol, seed=seed, backend=backend,
        )
        _train_once(comm, comm_overlap="off", sparse_payload="off", **common)
        _train_once(comm, comm_overlap="on", sparse_payload="auto", **common)
        blocking_times: List[float] = []
        overlapped_times: List[float] = []
        overlapped_report = None
        for _ in range(int(repeats)):
            elapsed, _ = _train_once(
                comm, comm_overlap="off", sparse_payload="off", **common
            )
            blocking_times.append(elapsed)
            elapsed, overlapped_report = _train_once(
                comm, comm_overlap="on", sparse_payload="auto", **common
            )
            overlapped_times.append(elapsed)
    finally:
        comm.close()
    blocking_seconds = min(blocking_times)
    overlapped_seconds = min(overlapped_times)

    # Payload sweep: the packed allreduce length is schedule- and
    # transport-independent, so read it from serial-transport epoch logs.
    from repro.comm import SerialComm

    payload_rows: List[Dict[str, float]] = []
    for sweep_density in payload_densities:
        with SerialComm() as serial_comm:
            sweep = dict(common)
            sweep.update(density=sweep_density, epochs=1)
            _, dense_report = _train_once(
                serial_comm, comm_overlap="off", sparse_payload="off", **sweep
            )
        with SerialComm() as serial_comm:
            _, sparse_report = _train_once(
                serial_comm, comm_overlap="off", sparse_payload="on", **sweep
            )
        dense_floats = float(dense_report.extra["epoch_logs"][0]["payload_floats"])
        sparse_floats = float(sparse_report.extra["epoch_logs"][0]["payload_floats"])
        payload_rows.append(
            {
                "density": float(sweep_density),
                "dense_payload_floats": dense_floats,
                "sparse_payload_floats": sparse_floats,
                "payload_ratio": sparse_floats / max(dense_floats, 1.0),
                "sparse_engaged": float(
                    sparse_report.extra["epoch_logs"][0]["sparse_payload"]
                ),
            }
        )

    return {
        "config": {
            "n_input": input_spec.n_units,
            "n_hidden": int(n_minicolumns),
            "batch_size": int(batch_size),
            "n_samples": int(n_samples),
            "epochs": int(epochs),
            "repeats": int(repeats),
            "ranks": int(ranks),
            "density": float(density),
            "weight_refresh_tol": float(weight_refresh_tol),
            "transport": "process",
            "backend": backend or "numpy",
        },
        "blocking_seconds_per_batch": blocking_seconds / n_batches,
        "overlapped_seconds_per_batch": overlapped_seconds / n_batches,
        "speedup": blocking_seconds / max(overlapped_seconds, 1e-12),
        "overlapped_iallreduce_calls": int(
            overlapped_report.extra["iallreduce_calls"]
        ),
        "batches": n_batches,
        "payload_sweep": payload_rows,
    }
