"""Closed-loop latency/throughput measurement of the online serving path.

:func:`measure_serving_latency` stands up a real :class:`PredictionServer`
(ephemeral port, Higgs-sized model) and drives it with a **closed-loop
client population**: ``n_clients`` threads each keep exactly one request in
flight (send, wait, send again) over persistent HTTP connections.  Closed
loops measure the operating point a saturated-but-stable service sits at —
open-loop (fixed-rate) injection above saturation just measures queue
growth.

Two phases are measured:

* ``single_client`` — one closed-loop client, the no-coalescing baseline:
  every request rides its own micro-batch (flushed by deadline), so this is
  the per-request floor of the stack (HTTP parse + queue hop + one
  engine dispatch of one row).
* ``saturated`` — ``n_clients`` concurrent closed-loop clients: requests
  coalesce into micro-batches and the per-request cost amortises into one
  fused dispatch.  ``batching_gain`` is the throughput ratio of the two
  phases, and ``mean_batch_rows`` (from ``/metrics``) shows the fill the
  coalescing actually achieved.

The CI gate (``--check-latency`` in ``benchmarks/bench_kernels.py``) bounds
the saturated p99 latency and requires zero failed requests.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Dict, List, Optional

import numpy as np

__all__ = ["measure_serving_latency"]


def _bench_network(n_minicolumns: int = 300, seed: int = 0):
    """A built Higgs-sized network (same shape as the kernel benchmarks)."""
    from repro.core import BCPNNClassifier, InputSpec, Network, StructuralPlasticityLayer

    network = Network(seed=seed, name="bench-serving-latency")
    network.add(StructuralPlasticityLayer(1, n_minicolumns, density=0.4, seed=1))
    network.add(BCPNNClassifier(n_classes=2))
    network.build(InputSpec([10] * 28))
    return network


def _one_hot_rows(n_rows: int, input_sizes: List[int], seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    total = sum(input_sizes)
    x = np.zeros((n_rows, total))
    offset = 0
    for size in input_sizes:
        winners = rng.integers(0, size, size=n_rows)
        x[np.arange(n_rows), offset + winners] = 1.0
        offset += size
    return x


class _ClosedLoopClient(threading.Thread):
    """One closed-loop client: send, wait for the reply, send again."""

    def __init__(
        self,
        host: str,
        port: int,
        payloads: List[bytes],
        stop_at: float,
        max_requests: int,
    ) -> None:
        super().__init__(daemon=True)
        self.host, self.port = host, port
        self.payloads = payloads
        self.stop_at = stop_at
        self.max_requests = max_requests
        self.latencies: List[float] = []
        self.rows_done = 0
        self.failures = 0

    def run(self) -> None:  # pragma: no cover - exercised via the benchmark
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30.0)
        headers = {"Content-Type": "application/json", "Connection": "keep-alive"}
        i = 0
        try:
            while time.monotonic() < self.stop_at and len(self.latencies) < self.max_requests:
                body = self.payloads[i % len(self.payloads)]
                start = time.perf_counter()
                try:
                    conn.request("POST", "/predict", body=body, headers=headers)
                    response = conn.getresponse()
                    data = response.read()
                except (OSError, http.client.HTTPException):
                    self.failures += 1
                    conn.close()
                    conn = http.client.HTTPConnection(self.host, self.port, timeout=30.0)
                    continue
                elapsed = time.perf_counter() - start
                if response.status == 200:
                    self.latencies.append(elapsed)
                    self.rows_done += len(json.loads(data)["predictions"])
                else:
                    self.failures += 1
                i += 1
        finally:
            conn.close()


def _run_phase(
    host: str,
    port: int,
    n_clients: int,
    payloads: List[bytes],
    duration: float,
    max_requests_per_client: int,
) -> Dict[str, float]:
    stop_at = time.monotonic() + duration
    clients = [
        _ClosedLoopClient(host, port, payloads, stop_at, max_requests_per_client)
        for _ in range(n_clients)
    ]
    start = time.perf_counter()
    for client in clients:
        client.start()
    for client in clients:
        client.join()
    elapsed = time.perf_counter() - start
    latencies = np.asarray(
        [lat for client in clients for lat in client.latencies], dtype=np.float64
    )
    rows = sum(client.rows_done for client in clients)
    failures = sum(client.failures for client in clients)
    phase: Dict[str, float] = {
        "clients": float(n_clients),
        "requests": float(latencies.size),
        "rows": float(rows),
        "failures": float(failures),
        "seconds": float(elapsed),
        "requests_per_second": float(latencies.size / max(elapsed, 1e-9)),
        "rows_per_second": float(rows / max(elapsed, 1e-9)),
    }
    if latencies.size:
        phase["p50_ms"] = float(np.percentile(latencies, 50) * 1e3)
        phase["p90_ms"] = float(np.percentile(latencies, 90) * 1e3)
        phase["p99_ms"] = float(np.percentile(latencies, 99) * 1e3)
        phase["max_ms"] = float(latencies.max() * 1e3)
    return phase


def measure_serving_latency(
    n_clients: int = 8,
    rows_per_request: int = 4,
    duration: float = 2.0,
    batch_size: int = 256,
    batch_deadline: float = 0.002,
    n_minicolumns: int = 300,
    max_requests_per_client: int = 100_000,
    network=None,
    backend: Optional[str] = None,
) -> Dict[str, object]:
    """Measure online-serving latency percentiles and saturation throughput.

    Parameters
    ----------
    n_clients:
        Closed-loop client threads in the saturated phase (each keeps one
        request in flight).
    rows_per_request:
        Rows per ``POST /predict`` request (1 = the pure single-row
        request-facing workload).
    duration:
        Seconds per phase.
    batch_size / batch_deadline:
        Micro-batcher flush thresholds (rows / seconds).
    network:
        Optional prebuilt network (default: the Higgs-sized benchmark
        model).

    Returns
    -------
    dict
        ``config``, per-phase ``single_client``/``saturated`` blocks
        (p50/p90/p99 ms, rows/s, failures), ``batching_gain`` (saturated
        over single-client rows/s) and ``mean_batch_rows`` achieved.
    """
    from repro.serving import ModelRunner, PredictionServer, ServerThread

    if network is None:
        network = _bench_network(n_minicolumns=n_minicolumns)
    runner = ModelRunner(network, batch_size=batch_size, backend=backend)
    server = PredictionServer(
        runner,
        port=0,
        batch_size=batch_size,
        batch_deadline=batch_deadline,
        max_queue_rows=max(4096, batch_size * 8),
    )
    input_sizes = network.hidden_layers[0].input_spec.hypercolumn_sizes
    # A rotation of pre-serialised payloads so JSON encoding cost stays off
    # the client's critical path measurements as much as possible.
    rows = _one_hot_rows(64 * rows_per_request, input_sizes, seed=3)
    payloads = [
        json.dumps(
            {"rows": rows[k * rows_per_request : (k + 1) * rows_per_request].tolist()}
        ).encode("utf-8")
        for k in range(64)
    ]
    with ServerThread(server) as handle:
        host, port = server.host, handle.port
        # Warm the predictor workspaces and HTTP path before timing.
        _run_phase(host, port, 1, payloads, min(0.3, duration), 50)
        single = _run_phase(host, port, 1, payloads, duration, max_requests_per_client)
        saturated = _run_phase(
            host, port, n_clients, payloads, duration, max_requests_per_client
        )
        batcher_stats = server.batcher.stats.as_dict()
    gain = saturated["rows_per_second"] / max(single["rows_per_second"], 1e-9)
    return {
        "config": {
            "n_clients": int(n_clients),
            "rows_per_request": int(rows_per_request),
            "duration_seconds": float(duration),
            "batch_size": int(batch_size),
            "batch_deadline_seconds": float(batch_deadline),
            "n_input": int(sum(input_sizes)),
            "n_hidden": int(n_minicolumns),
            "backend": backend or "per-layer default",
        },
        "single_client": single,
        "saturated": saturated,
        "batching_gain": float(gain),
        "mean_batch_rows": float(batcher_stats["mean_batch_rows"]),
        "batcher": batcher_stats,
    }
