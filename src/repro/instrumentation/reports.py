"""Plain-text and JSON report formatting for experiment results."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.exceptions import ConfigurationError

__all__ = ["format_table", "format_comparison", "dump_json_report"]


def _format_value(value, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render a list of dict rows as an aligned ASCII table."""
    if not rows:
        raise ConfigurationError("cannot format an empty table")
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)
    rendered = [[_format_value(row.get(col, ""), precision) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def format_comparison(
    results: Mapping[str, Mapping[str, float]],
    metrics: Sequence[str],
    precision: int = 4,
    title: Optional[str] = None,
) -> str:
    """Render a {method: {metric: value}} mapping as a comparison table."""
    if not results:
        raise ConfigurationError("results must not be empty")
    rows = []
    for method, values in results.items():
        row: Dict[str, object] = {"method": method}
        for metric in metrics:
            row[metric] = float(values.get(metric, float("nan")))
        rows.append(row)
    return format_table(rows, columns=["method", *metrics], precision=precision, title=title)


def dump_json_report(data, path: Union[str, Path]) -> Path:
    """Write a result mapping (or list of them) as indented JSON.

    Parent directories are created.  A mapping is copied to a plain dict;
    a list (``repro run`` directory mode emits one entry per config) is
    written as a JSON array.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = list(data) if isinstance(data, (list, tuple)) else dict(data)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, default=_json_default)
        handle.write("\n")
    return path


def _json_default(value):
    try:
        import numpy as np

        if isinstance(value, np.integer):
            return int(value)
        if isinstance(value, np.floating):
            return float(value)
        if isinstance(value, np.ndarray):
            return value.tolist()
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return str(value)
