"""Command-line interface.

Six entry points are installed (see ``pyproject.toml``):

* ``repro-run``        — run experiments from declarative config files
                         (``repro run config.yaml``): scenario selection,
                         layered defaults, dotted ``--set`` overrides,
                         optional hyperopt search and serving — see
                         ``docs/configs.md``.
* ``repro-train``      — train one Higgs classifier and print accuracy/AUC.
* ``repro-sweep``      — run a paper experiment sweep (capacity, receptive
                         field, related work, precision, distributed).
* ``repro-benchmark``  — print the analytical BCPNN cost model and time the
                         compute backends on a representative kernel.
* ``repro-predict``    — streaming bulk inference with a saved model
                         (train one with ``repro-train --save-model``):
                         CSV/npz in, predictions (or probabilities) out, on
                         any registered backend.  The feature file is read
                         into memory once; all *layer-sized* intermediates
                         stay O(batch) regardless of input length.
* ``repro-serve``      — the online request-facing counterpart of
                         ``repro-predict``: an HTTP/JSON endpoint
                         (``POST /predict``, ``GET /healthz``,
                         ``GET /metrics``, ``POST /reload``) that coalesces
                         concurrent requests into micro-batches through the
                         same engine workspaces (see ``docs/serving.md``).

All are also reachable as ``python -m repro.cli <command>``, and all except
``serve`` accept ``--json PATH`` to additionally write the results as a
JSON report.

``train``, ``predict``, ``sweep``, ``benchmark`` and ``serve`` additionally
accept ``--comm SPEC`` — a transport spec such as ``serial``, ``thread:4``,
``process:4``, ``tcp://host:port?ranks=8`` (multi-host sockets) or ``mpi``
— to run data-parallel training / rank-sharded serving / the
comm-throughput benchmark over a :mod:`repro.comm` transport.  ``--comm
help`` prints the capability table (multihost / fault-tolerant /
nonblocking per transport); the legacy ``--ranks N`` flag still works for
bare transport names.  ``train`` also accepts ``--fault-tolerance``
(recover from crashed ranks mid-run on the process/tcp transports) and the
``--inject-crash RANK:EPOCH:BATCH`` testing hook.

``train``, ``sweep`` and ``benchmark`` accept ``--pipeline`` (overlapped
double-buffered training loop; identical results) and
``--weight-refresh-tol TOL`` (stale-weights caching: skip the per-batch
``traces_to_weights`` refresh while the accumulated taupdt-scaled trace
drift stays under TOL; 0 = exact); ``predict`` accepts ``--pipeline`` to
overlap the hidden and head serving stages.

``train``, ``sweep`` and ``predict`` accept ``--sparse {auto,on,off}`` —
the block-sparse execution plan that serves low-density receptive fields
through gather-GEMM kernels (an execution choice only; results unchanged).
On ``benchmark``, passing ``--sparse`` adds a dense-vs-sparse density-sweep
table.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

from repro import kernels
from repro.backend import get_backend, list_backends
from repro.experiments import (
    HiggsExperimentConfig,
    get_scale,
    prepare_higgs_data,
    run_capacity_sweep,
    run_distributed_equivalence,
    run_precision_ablation,
    run_receptive_field_sweep,
    run_related_work_comparison,
    train_and_evaluate,
)
from repro.instrumentation import BCPNNCostModel, RepeatTimer, format_table
from repro.instrumentation.reports import dump_json_report
from repro.utils.logging import enable_console_logging

__all__ = [
    "main_run",
    "main_train",
    "main_sweep",
    "main_benchmark",
    "main_predict",
    "main_serve",
    "main",
]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument("--scale", choices=["small", "full"], default=None, help="experiment scale")
    parser.add_argument("--json", type=str, default=None, help="write results to this JSON file")
    parser.add_argument("--quiet", action="store_true", help="suppress progress logging")


def _add_comm(parser: argparse.ArgumentParser) -> None:
    """``--comm``/``--ranks``: select a repro.comm transport spec and size."""
    parser.add_argument(
        "--comm",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "communicator transport spec for data-parallel execution: "
            "'serial', 'thread:N', 'process:N', 'tcp://host:port?ranks=N' "
            "(multi-host sockets) or 'mpi'; pass 'help' to print the "
            "transport capability table and exit"
        ),
    )
    parser.add_argument(
        "--ranks",
        type=int,
        default=None,
        help=(
            "legacy rank count for bare transport names (deprecated: embed "
            "the count in --comm, e.g. 'thread:4'; N > 1 alone implies the "
            "thread transport)"
        ),
    )


def _print_comm_help() -> None:
    """The real transport table behind ``--comm help``."""
    from repro.comm import transport_capabilities

    rows = []
    for name, caps in transport_capabilities().items():
        rows.append(
            {
                "transport": name,
                "example_spec": caps["spec"],
                "multihost": "yes" if caps["multihost"] else "no",
                "fault_tolerant": "yes" if caps["fault_tolerant"] else "no",
                "nonblocking": "yes" if caps["nonblocking"] else "no",
            }
        )
    print(format_table(rows, title="Available comm transports"))
    print(
        "Spec grammar: NAME[:RANKS] or tcp://HOST:PORT?ranks=N"
        "[&timeout=SEC&chunk_bytes=B&spawn=0|1]; see docs/distributed.md."
    )


def _add_sparse(parser: argparse.ArgumentParser, default: Optional[str] = "auto") -> None:
    """``--sparse``: block-sparse execution policy for masked layers."""
    parser.add_argument(
        "--sparse",
        choices=["auto", "on", "off"],
        default=default,
        help=(
            "block-sparse execution plan for the structural-plasticity mask: "
            "auto (gather-GEMM kernels when the receptive-field density is at "
            "or below the measured break-even), on (force sparse), off (force "
            "the dense masked GEMM); an execution choice only, results are "
            "unchanged"
        ),
    )


def _add_pipeline(parser: argparse.ArgumentParser, default_tol: float = 0.0) -> None:
    """``--pipeline``/``--weight-refresh-tol``: pipelined training options."""
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "overlapped training loop: double-buffered engine workspaces, "
            "prefetched batch gathers and off-thread monitoring reductions "
            "(identical results, different work schedule)"
        ),
    )
    parser.add_argument(
        "--weight-refresh-tol",
        type=float,
        default=default_tol,
        metavar="TOL",
        help=(
            "stale-weights tolerance: skip the per-batch traces_to_weights "
            "refresh while the accumulated taupdt-scaled trace drift stays "
            f"under TOL (0 = refresh every batch, exact; default {default_tol:g})"
        ),
    )
    parser.add_argument(
        "--comm-overlap",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "overlap the per-batch statistics allreduce behind the next "
            "batch's forward via nonblocking collectives (requires "
            "--weight-refresh-tol > 0; at tol=0 every mode is the exact "
            "blocking schedule; default auto)"
        ),
    )
    parser.add_argument(
        "--sparse-payload",
        choices=("auto", "on", "off"),
        default="auto",
        help=(
            "pack only active-row outer-product statistics into the "
            "allreduce once the plasticity mask is frozen for the rest of "
            "the run (auto: frozen sub-unity-density masks only; default auto)"
        ),
    )


def _build_comm(args: argparse.Namespace):
    """Resolve the ``--comm``/``--ranks`` flags into a communicator (or None).

    Delegates to :func:`repro.comm.factory.resolve_comm` — the same resolver
    ``repro run`` applies to ``training.comm``/``training.ranks`` — so the
    flag and config paths cannot diverge.  Returns ``None`` when neither
    flag was given, keeping the historical single-process code paths
    untouched; ``--ranks N`` without ``--comm`` defaults to the thread
    transport.
    """
    from repro.comm.factory import resolve_comm

    return resolve_comm(args.comm, args.ranks)


def _finish(result: Dict[str, object], args: argparse.Namespace) -> int:
    if args.json:
        sanitised = {
            k: v for k, v in result.items() if k not in ("network", "masks", "mask_evolution")
        }
        dump_json_report(sanitised, args.json)
    return 0


# ----------------------------------------------------------------- training
def main_train(argv: Optional[List[str]] = None) -> int:
    """Train a single Higgs classifier from the command line."""
    parser = argparse.ArgumentParser(
        prog="repro-train", description="Train a BCPNN Higgs classifier and report accuracy/AUC."
    )
    parser.add_argument("--hcus", type=int, default=1, help="number of hidden hypercolumns")
    parser.add_argument("--mcus", type=int, default=150, help="minicolumns per hypercolumn")
    parser.add_argument("--density", type=float, default=0.4, help="receptive-field density")
    parser.add_argument(
        "--head", choices=["sgd", "bcpnn"], default="sgd", help="classification head"
    )
    parser.add_argument(
        "--events", type=int, default=None, help="number of events (default: scale)"
    )
    parser.add_argument("--epochs", type=int, default=None, help="hidden-layer epochs")
    parser.add_argument(
        "--backend", type=str, default="numpy", help=f"backend ({', '.join(list_backends())})"
    )
    parser.add_argument(
        "--higgs-path", type=str, default=None, help="path to a real HIGGS.csv[.gz]"
    )
    parser.add_argument(
        "--save-model",
        type=str,
        default=None,
        metavar="PATH",
        help="save the trained network as a .npz archive (consumed by repro-predict)",
    )
    parser.add_argument(
        "--fault-tolerance",
        action="store_true",
        help=(
            "recover from crashed ranks mid-training (fault-tolerant "
            "transports: process, tcp); the dead rank is respawned or "
            "re-admitted and training resumes from the last epoch boundary"
        ),
    )
    parser.add_argument(
        "--inject-crash",
        type=str,
        default=None,
        metavar="RANK:EPOCH:BATCH",
        help=(
            "testing hook: kill the given rank at the start of that global "
            "batch, exactly once (pair with --fault-tolerance to watch the "
            "run recover)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        type=str,
        default=None,
        metavar="DIR",
        help=(
            "durable training checkpoints: write an atomic, checksummed "
            "checkpoint into DIR at epoch boundaries (see docs/reliability.md)"
        ),
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="checkpoint every N epoch boundaries (default 1)",
    )
    parser.add_argument(
        "--checkpoint-keep",
        type=int,
        default=3,
        metavar="N",
        help="keep the newest N checkpoints, rotating older ones out (default 3)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume from the latest checkpoint in --checkpoint-dir; the run "
            "continues bitwise-identically to an uninterrupted one at "
            "--weight-refresh-tol 0 (hyperparameters must match — the "
            "checkpoint's schedule fingerprint is verified)"
        ),
    )
    _add_common(parser)
    _add_comm(parser)
    _add_pipeline(parser)
    _add_sparse(parser)
    args = parser.parse_args(argv)
    if args.comm == "help":
        _print_comm_help()
        return 0
    if not args.quiet:
        enable_console_logging()

    fault_injection = None
    if args.inject_crash is not None:
        parts = args.inject_crash.split(":")
        if len(parts) != 3:
            parser.error("--inject-crash takes RANK:EPOCH:BATCH, e.g. 1:0:2")
        fault_injection = dict(zip(("rank", "epoch", "batch"), (int(p) for p in parts)))
    scale = get_scale(args.scale)
    config = HiggsExperimentConfig(
        n_hypercolumns=args.hcus,
        n_minicolumns=args.mcus,
        density=args.density,
        head=args.head,
        n_events=args.events or scale.n_events,
        hidden_epochs=args.epochs or scale.hidden_epochs,
        classifier_epochs=scale.classifier_epochs,
        batch_size=scale.batch_size,
        backend=args.backend,
        seed=args.seed,
        pipeline=args.pipeline,
        weight_refresh_tol=args.weight_refresh_tol,
        sparse=args.sparse,
        comm_overlap=args.comm_overlap,
        sparse_payload=args.sparse_payload,
        fault_tolerance=args.fault_tolerance,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        checkpoint_keep=args.checkpoint_keep,
        resume=args.resume,
    )
    data = prepare_higgs_data(
        n_events=config.n_events, n_bins=config.n_bins, seed=args.seed, path=args.higgs_path
    )
    comm = _build_comm(args)
    try:
        result = train_and_evaluate(
            config, data=data, comm=comm, fault_injection=fault_injection
        )
    finally:
        if comm is not None:
            comm.close()
    ranks_note = ""
    if comm is not None:
        result["comm"] = {"transport": comm.transport, "ranks": int(comm.size)}
        ranks_note = f"  ranks={comm.size} ({comm.transport})"
    print(
        f"accuracy={result['accuracy']:.4f}  auc={result['auc']:.4f}  "
        f"log_loss={result['log_loss']:.4f}  train_time={result['train_seconds']:.1f}s"
        + ranks_note
    )
    if args.save_model:
        from repro.core import save_network

        saved = save_network(result["network"], args.save_model)
        print(f"saved model to {saved}")
        result["model_path"] = str(saved)
    return _finish(result, args)


# -------------------------------------------------------------------- sweeps
_SWEEPS = {
    "capacity": run_capacity_sweep,
    "receptive-field": run_receptive_field_sweep,
    "related-work": run_related_work_comparison,
    "precision": run_precision_ablation,
    "distributed": run_distributed_equivalence,
}


def main_sweep(argv: Optional[List[str]] = None) -> int:
    """Run one of the paper's experiment sweeps."""
    parser = argparse.ArgumentParser(
        prog="repro-sweep", description="Run a paper experiment sweep and print its table."
    )
    parser.add_argument("experiment", choices=sorted(_SWEEPS), help="which experiment to run")
    parser.add_argument(
        "--backend",
        type=str,
        default="numpy",
        help=f"compute backend for the sweep ({', '.join(list_backends())})",
    )
    _add_common(parser)
    _add_comm(parser)
    _add_pipeline(parser)
    _add_sparse(parser)
    args = parser.parse_args(argv)
    if args.comm == "help":
        _print_comm_help()
        return 0
    if not args.quiet:
        enable_console_logging()
    scale = get_scale(args.scale)
    runner = _SWEEPS[args.experiment]
    if args.experiment == "precision":
        # The precision ablation *is* a backend sweep; --backend is ignored
        # (and it measures numerics, so the pipeline flags do not apply).
        result = runner(scale=scale, seed=args.seed)
    elif args.experiment == "distributed":
        # The distributed sweep compares rank counts on one comm transport;
        # --comm picks the transport (spec ranks / --ranks cap the sweep).
        from repro.comm import parse_transport_spec

        spec = parse_transport_spec(args.comm) if args.comm else None
        kwargs = {"transport": spec.name if spec else "thread"}
        ranks = args.ranks if args.ranks is not None else (spec.ranks if spec else None)
        if ranks is not None:
            kwargs["rank_counts"] = (1, int(ranks))
        result = runner(
            scale=scale,
            seed=args.seed,
            backend=args.backend,
            pipeline=args.pipeline,
            weight_refresh_tol=args.weight_refresh_tol,
            sparse=args.sparse,
            comm_overlap=args.comm_overlap,
            sparse_payload=args.sparse_payload,
            **kwargs,
        )
    else:
        result = runner(
            scale=scale,
            seed=args.seed,
            backend=args.backend,
            pipeline=args.pipeline,
            weight_refresh_tol=args.weight_refresh_tol,
            sparse=args.sparse,
        )
    print(result["table"])
    return _finish(result, args)


# ---------------------------------------------------------------- benchmark
def main_benchmark(argv: Optional[List[str]] = None) -> int:
    """Print the analytical cost model and time the available backends."""
    parser = argparse.ArgumentParser(
        prog="repro-benchmark",
        description="Analytical BCPNN cost model plus backend kernel timings.",
    )
    parser.add_argument("--batch", type=int, default=256, help="batch size")
    parser.add_argument(
        "--inputs", type=int, default=280, help="input units (28 features x 10 bins)"
    )
    parser.add_argument("--mcus", type=int, default=300, help="minicolumns per hypercolumn")
    parser.add_argument("--hcus", type=int, default=4, help="hidden hypercolumns")
    parser.add_argument("--repeats", type=int, default=5, help="timing repetitions")
    _add_common(parser)
    _add_comm(parser)
    # The benchmark defaults to the standard stale-weights tolerance so the
    # pipelined table reflects the engine's shipped configuration; pass
    # --weight-refresh-tol 0 explicitly to time the exact (pure-scheduling)
    # pipelined mode.
    _add_pipeline(parser, default_tol=0.01)
    # No default: passing --sparse opts the (multi-second) dense-vs-sparse
    # density sweep table into the benchmark run.
    _add_sparse(parser, default=None)
    args = parser.parse_args(argv)
    if args.comm == "help":
        _print_comm_help()
        return 0
    if not args.quiet:
        enable_console_logging()

    model = BCPNNCostModel(
        n_input_units=args.inputs,
        n_hypercolumns=args.hcus,
        n_minicolumns=args.mcus,
        batch_size=args.batch,
    )
    cost = model.batch_cost()
    print("Analytical per-batch cost (Section II-B):")
    print(format_table([cost.as_dict()], precision=1))

    rng = np.random.default_rng(args.seed)
    n_hidden = args.hcus * args.mcus
    x = rng.random((args.batch, args.inputs))
    weights = rng.normal(size=(args.inputs, n_hidden))
    bias = rng.normal(size=n_hidden)
    mask = np.ones((args.inputs, n_hidden))
    hidden_sizes = [args.mcus] * args.hcus

    rows = []
    for name in ("numpy", "parallel", "distributed", "float32", "float16"):
        backend = get_backend(name)
        timer = RepeatTimer(repeats=args.repeats, warmup=1)
        stats = timer.measure(lambda b=backend: b.forward(x, weights, bias, mask, hidden_sizes))
        rows.append(
            {
                "backend": name,
                "mean_seconds": stats.mean,
                "std_seconds": stats.std,
                "gflops_per_s": cost.support_gemm_flops / max(stats.mean, 1e-12) / 1e9,
            }
        )
        backend.close()
    table = format_table(rows, precision=5, title="Forward-kernel timing by backend")
    print(table)

    # Fused streaming path vs the allocate-per-batch composition (engine win).
    from repro.engine import ExecutionPlan, LayerEngine

    plan = ExecutionPlan(
        n_input=args.inputs, hidden_sizes=tuple([args.mcus] * args.hcus), batch_size=args.batch
    )
    numpy_backend = get_backend("numpy")
    engine = LayerEngine(numpy_backend, plan)
    p_i = np.full(args.inputs, 1.0 / args.inputs)
    p_j = np.full(n_hidden, 1.0 / n_hidden)
    p_ij = np.outer(p_i, p_j)

    class _TraceView:
        def __init__(self):
            self.p_i, self.p_j, self.p_ij = p_i, p_j, p_ij
            self.updates_seen = 0

    traces = _TraceView()
    fused_timer = RepeatTimer(repeats=args.repeats, warmup=1)
    fused_stats = fused_timer.measure(
        lambda: engine.fused_update(x, weights, bias, mask, 1.0, traces, 0.01)
    )
    unfused_timer = RepeatTimer(repeats=args.repeats, warmup=1)

    def unfused_step():
        activations = numpy_backend.forward(x, weights, bias, mask, hidden_sizes)
        mean_x, mean_a, mean_outer = numpy_backend.batch_statistics(x, activations)
        kernels.ema_update(p_i, p_j, p_ij, mean_x, mean_a, mean_outer, 0.01)

    unfused_stats = unfused_timer.measure(unfused_step)
    fused_rows = [
        {"path": "unfused (allocate per batch)", "mean_seconds": unfused_stats.mean},
        {"path": "fused (preallocated workspace)", "mean_seconds": fused_stats.mean},
    ]
    fused_table = format_table(
        fused_rows, precision=6, title="Training-step dispatch: fused vs unfused"
    )
    print(fused_table)
    result = {
        "cost_model": cost.as_dict(),
        "backend_timings": rows,
        "fused_vs_unfused": fused_rows,
        "table": table + "\n" + fused_table,
    }

    # Pipelined training engine vs the serial fused loop (opted in with
    # --pipeline): double-buffered workspaces, prefetched gathers,
    # off-thread entropy and stale-weights caching at --weight-refresh-tol.
    if args.pipeline:
        from repro.instrumentation import measure_pipelined_training

        tol = args.weight_refresh_tol
        pipelined = measure_pipelined_training(
            batch_size=args.batch,
            n_minicolumns=args.mcus,
            repeats=max(2, args.repeats // 2),
            weight_refresh_tol=tol,
        )
        pipeline_rows = [
            {
                "path": "serial fused loop",
                "seconds_per_batch": pipelined["serial_seconds_per_batch"],
            },
            {
                "path": f"pipelined (tol={tol:g})",
                "seconds_per_batch": pipelined["pipelined_seconds_per_batch"],
            },
        ]
        pipeline_table = format_table(
            pipeline_rows,
            precision=6,
            title=f"Pipelined training ({pipelined['speedup']:.2f}x, "
            f"{pipelined['weight_refreshes']}/{pipelined['batches']} weight refreshes)",
        )
        print(pipeline_table)
        result["pipelined_training"] = pipelined
        result["table"] = result["table"] + "\n" + pipeline_table

    # Block-sparse execution plan vs the dense fused path (opted in with
    # --sparse): dense vs gather-GEMM seconds/batch and serving rows/s
    # across mask densities, on the same shipped layer/predictor paths the
    # committed BENCH_kernels.json sweep publishes.
    if args.sparse is not None:
        from repro.instrumentation import measure_sparse_density_sweep

        sweep = measure_sparse_density_sweep(
            n_minicolumns=args.mcus, repeats=max(2, args.repeats // 2)
        )
        sparse_table = format_table(
            sweep["densities"],
            precision=6,
            title="Block-sparse execution: dense vs gather-GEMM by density",
        )
        print(sparse_table)
        result["sparse_density_sweep"] = sweep
        result["table"] = result["table"] + "\n" + sparse_table

    # Per-transport collective throughput (opted in with --comm/--ranks):
    # the payload is the trace matrix one data-parallel batch allreduces.
    if args.comm is not None or args.ranks is not None:
        from repro.comm.benchmark import measure_comm_throughput

        transports = (args.comm,) if args.comm else ("serial", "thread", "process", "tcp")
        comm_result = measure_comm_throughput(
            transports=transports,
            ranks=int(args.ranks) if args.ranks else 2,
            shape=(args.inputs + 1, n_hidden),
            repeats=args.repeats * 4,
        )
        comm_table = format_table(
            comm_result["transports"],
            precision=6,
            title="Comm transport allreduce throughput",
        )
        print(comm_table)
        result["comm_throughput"] = comm_result
        result["table"] = result["table"] + "\n" + comm_table
    return _finish(result, args)


# ----------------------------------------------------------------- serving
def _load_feature_matrix(path: str) -> np.ndarray:
    """Load a 2-D feature matrix from a ``.npz``/``.npy`` archive or a CSV.

    ``.npz`` archives use the array under the key ``x`` (falling back to the
    single array when only one is stored); CSV/CSV.gz files are streamed
    through :func:`repro.datasets.csvio.read_numeric_csv`.
    """
    from repro.datasets.csvio import read_numeric_csv
    from repro.exceptions import DataError

    p = Path(path)
    if not p.is_file():
        raise DataError(f"input file not found: {path}")
    if p.suffix == ".npy":
        return np.asarray(np.load(p, allow_pickle=False), dtype=np.float64)
    if p.suffix == ".npz":
        with np.load(p, allow_pickle=False) as archive:
            if "x" in archive.files:
                return np.asarray(archive["x"], dtype=np.float64)
            if len(archive.files) == 1:
                return np.asarray(archive[archive.files[0]], dtype=np.float64)
            raise DataError(
                f"{path} holds {len(archive.files)} arrays and none is named 'x'; "
                "store the feature matrix under the key 'x'"
            )
    return read_numeric_csv(p)


def main_predict(argv: Optional[List[str]] = None) -> int:
    """Streaming bulk inference: saved model + CSV/npz features -> predictions."""
    from repro.core import load_network
    from repro.datasets.csvio import write_numeric_csv
    from repro.serving import StreamingPredictor

    parser = argparse.ArgumentParser(
        prog="repro-predict",
        description=(
            "Stream a feature matrix through a saved network and write the "
            "predictions (optionally class probabilities).  The input file is "
            "loaded once; every layer-sized intermediate stays O(batch-size)."
        ),
    )
    parser.add_argument("input", type=str, help="feature matrix (.csv/.csv.gz/.npy/.npz)")
    parser.add_argument("--model", type=str, required=True, help="saved network (.npz)")
    parser.add_argument("--output", type=str, default=None, help="write predictions to this CSV")
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        help=(
            f"force one compute backend for the whole stack ({', '.join(list_backends())}); "
            "default: each layer's own resolved backend (the NumPy reference for loaded models)"
        ),
    )
    parser.add_argument("--batch-size", type=int, default=1024, help="rows per streamed batch")
    parser.add_argument("--proba", action="store_true", help="also emit class probabilities")
    parser.add_argument(
        "--pipeline",
        action="store_true",
        help=(
            "overlap the hidden stages of batch k with the head stage of "
            "batch k-1 on a background thread (identical outputs)"
        ),
    )
    _add_common(parser)
    _add_comm(parser)
    # No default: without --sparse the model's saved policy applies; with it
    # the mode is *forced* (auto re-evaluates the density threshold, on/off
    # force the gather-GEMM / dense masked paths).
    _add_sparse(parser, default=None)
    args = parser.parse_args(argv)
    if args.comm == "help":
        _print_comm_help()
        return 0
    if not args.quiet:
        enable_console_logging()

    network = load_network(args.model)
    if args.sparse is not None:
        # bind_sparse(force=True) updates the layer's *spec* too, so worker
        # replicas rebuilt from the serialized blob on process-comm ranks
        # make the same dense-vs-sparse choice as the driver.
        for layer in network.hidden_layers:
            if hasattr(layer, "bind_sparse"):
                layer.bind_sparse(args.sparse, force=True)
    x = _load_feature_matrix(args.input)
    comm = _build_comm(args)
    predictor = StreamingPredictor(
        network,
        batch_size=args.batch_size,
        backend=args.backend,
        comm=comm,
        pipeline=args.pipeline,
    )

    start = time.perf_counter()
    try:
        if args.proba:
            proba = predictor.predict_proba_stream(x)
            predictions = np.argmax(proba, axis=1)
        else:
            proba = None
            predictions = predictor.predict_stream(x)
    finally:
        if comm is not None:
            comm.close()
    elapsed = time.perf_counter() - start

    if args.output:
        if proba is not None:
            matrix = np.column_stack([predictions.astype(np.float64), proba])
            header = ["prediction"] + [f"p_class{c}" for c in range(proba.shape[1])]
        else:
            matrix = predictions.astype(np.float64)[:, None]
            header = ["prediction"]
        write_numeric_csv(args.output, matrix, header=header)

    rows_per_second = x.shape[0] / max(elapsed, 1e-9)
    comm_note = f", ranks={comm.size} ({comm.transport})" if comm is not None else ""
    print(
        f"predicted {x.shape[0]} rows in {elapsed:.3f}s "
        f"({rows_per_second:,.0f} rows/s, batch_size={args.batch_size}, "
        f"backend={predictor.backend.name}, "
        f"workspace={predictor.workspace_nbytes() / 1e6:.2f} MB{comm_note})"
        + (f"; wrote {args.output}" if args.output else "")
    )
    result: Dict[str, object] = {
        "n_rows": int(x.shape[0]),
        "seconds": float(elapsed),
        "rows_per_second": float(rows_per_second),
        "batch_size": int(args.batch_size),
        "backend": predictor.backend.name,
        "workspace_bytes": int(predictor.workspace_nbytes()),
        "class_counts": {
            int(c): int(n) for c, n in zip(*np.unique(predictions, return_counts=True))
        },
        "output": args.output,
    }
    if comm is not None:
        result["comm"] = {"transport": comm.transport, "ranks": int(comm.size)}
    return _finish(result, args)


# ------------------------------------------------------------ online serving
def _serve_until_interrupted(server, banner: str) -> None:
    """Start ``server``, print ``banner``, block until SIGINT/SIGTERM, drain."""
    import asyncio

    async def run() -> None:
        await server.start()
        print(banner.format(url=server.url), flush=True)
        stop_event = asyncio.Event()
        loop = asyncio.get_running_loop()
        import signal

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop_event.set)
            except (NotImplementedError, RuntimeError, ValueError):
                # Non-posix loops and non-main threads (tests) run without
                # signal-driven shutdown; Ctrl-C still lands as KeyboardInterrupt.
                pass
        try:
            await stop_event.wait()
        finally:
            print("draining...", flush=True)
            await server.stop(drain=True)

    asyncio.run(run())
    print("server stopped")


def main_serve(argv: Optional[List[str]] = None) -> int:
    """Serve a saved model over HTTP with micro-batched request coalescing."""
    from repro.core import load_network
    from repro.serving import ModelRunner, PredictionServer

    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description=(
            "Online serving endpoint: coalesce concurrent POST /predict "
            "requests into micro-batches (flush on --batch-size rows or "
            "--batch-deadline-ms, whichever first) dispatched through "
            "preallocated engine workspaces.  GET /healthz and /metrics for "
            "operations, POST /reload for zero-downtime model hot-swap.  "
            "Runs until SIGINT/SIGTERM, then drains gracefully."
        ),
    )
    parser.add_argument("--model", type=str, required=True, help="saved network (.npz)")
    parser.add_argument("--host", type=str, default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8477, help="bind port (0 = ephemeral, printed at startup)"
    )
    parser.add_argument(
        "--batch-size", type=int, default=64, help="micro-batch flush threshold in rows"
    )
    parser.add_argument(
        "--batch-deadline-ms",
        type=float,
        default=5.0,
        help="flush a partial micro-batch this many ms after its oldest request",
    )
    parser.add_argument(
        "--max-queue-rows",
        type=int,
        default=4096,
        help="admission-control bound on queued rows (503 + Retry-After beyond it)",
    )
    parser.add_argument(
        "--request-timeout-ms",
        type=float,
        default=None,
        help="per-request deadline in ms (504 on expiry; default: none)",
    )
    parser.add_argument(
        "--backend",
        type=str,
        default=None,
        help=(
            f"force one compute backend for the whole stack ({', '.join(list_backends())}); "
            "default: each layer's own resolved backend"
        ),
    )
    parser.add_argument(
        "--comm",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "communicator transport spec for rank-sharded serving batches "
            "('process:N', 'tcp://host:port?ranks=N', ...); pass 'help' to "
            "print the transport capability table and exit"
        ),
    )
    parser.add_argument("--quiet", action="store_true", help="suppress progress logging")
    # No default: without --sparse the model's saved policy applies (same
    # semantics as repro-predict).
    _add_sparse(parser, default=None)
    args = parser.parse_args(argv)
    if args.comm == "help":
        _print_comm_help()
        return 0
    if not args.quiet:
        enable_console_logging()

    network = load_network(args.model)
    if args.sparse is not None:
        for layer in network.hidden_layers:
            if hasattr(layer, "bind_sparse"):
                layer.bind_sparse(args.sparse, force=True)
    runner = ModelRunner(
        network, batch_size=args.batch_size, backend=args.backend, comm=args.comm
    )
    server = PredictionServer(
        runner,
        host=args.host,
        port=args.port,
        batch_size=args.batch_size,
        batch_deadline=args.batch_deadline_ms / 1e3,
        max_queue_rows=args.max_queue_rows,
        request_timeout=(
            args.request_timeout_ms / 1e3 if args.request_timeout_ms is not None else None
        ),
        model_path=args.model,
    )

    try:
        _serve_until_interrupted(
            server,
            f"serving {args.model} on {{url}}  "
            f"(batch_size={args.batch_size}, deadline={args.batch_deadline_ms:g}ms, "
            f"queue_bound={args.max_queue_rows} rows, "
            f"backend={server.runner._predictor.backend.name})",
        )
    finally:
        runner.close()
    return 0


# --------------------------------------------------------- declarative runs
def _summarize_run(result: Dict[str, object]) -> None:
    """One human line per completed ``repro run`` experiment."""
    scenario = result.get("scenario", "?")
    if "best_score" in result:  # hyperopt summary
        print(
            f"[{scenario}] hyperopt({result['algorithm']}): "
            f"best {result['metric']}={result['best_score']:.4f} "
            f"over {result['n_trials']} trials  best_params={result['best_params']}"
        )
        return
    comm = result.get("comm")
    ranks_note = f"  ranks={comm['ranks']} ({comm['transport']})" if comm else ""
    print(
        f"[{scenario}] accuracy={result['accuracy']:.4f}  auc={result['auc']:.4f}  "
        f"log_loss={result['log_loss']:.4f}  train_time={result['train_seconds']:.1f}s"
        + ranks_note
    )


def main_run(argv: Optional[List[str]] = None) -> int:
    """Run experiments from declarative config files (``repro run``)."""
    from repro.config import (
        build_prediction_server,
        compose_config,
        load_config_file,
        parse_set_overrides,
        run_experiment,
    )
    from repro.datasets.registry import scenario_catalog
    from repro.exceptions import ConfigError

    parser = argparse.ArgumentParser(
        prog="repro-run",
        description=(
            "Run experiments described by declarative config files.  Each "
            "config layers built-in defaults < the scenario's defaults < the "
            "file < dotted --set overrides, is validated against the typed "
            "schema, and then trains through exactly the same pipeline as "
            "the repro-train flags (bitwise-identical results for equivalent "
            "inputs).  JSON configs always load; YAML needs PyYAML "
            "(pip install 'repro-bcpnn[yaml]').  See docs/configs.md."
        ),
    )
    parser.add_argument(
        "configs",
        nargs="*",
        help=(
            "experiment config files (.yaml/.yml/.json) and/or directories "
            "of them (a directory runs every config inside, sorted); "
            "none = pure scenario defaults"
        ),
    )
    parser.add_argument(
        "--scenario",
        type=str,
        default=None,
        help=(
            "scenario name (see --list-scenarios); wins over the file's "
            "dataset.scenario, loses to --set dataset.scenario=..."
        ),
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "dotted override, e.g. --set training.backend=parallel "
            "--set model.density=0.2 (highest precedence; repeatable)"
        ),
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: cap events/epochs/trials and disable serving",
    )
    parser.add_argument(
        "--list-scenarios", action="store_true", help="print the scenario catalog and exit"
    )
    parser.add_argument("--json", type=str, default=None, help="write results to this JSON file")
    parser.add_argument("--quiet", action="store_true", help="suppress progress logging")
    args = parser.parse_args(argv)

    if args.list_scenarios:
        for entry in scenario_catalog():
            print(f"{entry['name']:>16}  [{entry['split']}]  {entry['description']}")
        return 0
    if not args.quiet:
        enable_console_logging()

    try:
        overrides = parse_set_overrides(args.overrides)
    except ConfigError as exc:
        print(f"config error: {exc}", file=sys.stderr)
        return 2

    # A directory argument expands to every config file inside it (sorted),
    # so `repro run configs/` executes a whole suite in one invocation.
    directory_mode = False
    sources: List[str] = []
    for entry in args.configs:
        p = Path(entry)
        if p.is_dir():
            directory_mode = True
            found = sorted(
                str(q) for q in p.iterdir() if q.suffix.lower() in (".yaml", ".yml", ".json")
            )
            if not found:
                print(
                    f"config error: no config files (*.yaml/*.yml/*.json) in {entry}",
                    file=sys.stderr,
                )
                return 2
            sources.extend(found)
        else:
            sources.append(str(entry))
    if not sources:
        sources = ["<defaults>"]

    results: List[Dict[str, object]] = []
    failures: List[Dict[str, str]] = []
    for source in sources:
        try:
            raw = load_config_file(source) if source != "<defaults>" else {}
            config = compose_config(
                raw,
                overrides=overrides,
                scenario=args.scenario,
                quick=args.quick,
                source=source,
            )
            result = run_experiment(config)
        except ConfigError as exc:
            print(f"config error: {exc}", file=sys.stderr)
            failures.append({"source": source, "error": str(exc)})
            continue
        result["source"] = source
        _summarize_run(result)
        results.append(result)
        if config.serving.enabled and "network" in result:
            server = build_prediction_server(result["network"], config.serving)
            _serve_until_interrupted(
                server,
                f"serving [{result['scenario']}] on {{url}}  "
                f"(batch_size={config.serving.batch_size}, "
                f"deadline={config.serving.batch_deadline_ms:g}ms, "
                f"queue_bound={config.serving.max_queue_rows} rows)",
            )

    if len(sources) > 1:
        summary_rows = []
        for r in results:
            summary_rows.append(
                {
                    "config": r["source"],
                    "scenario": r.get("scenario", "?"),
                    "status": "ok",
                    "accuracy": f"{r['accuracy']:.4f}" if "accuracy" in r else "-",
                    "auc": f"{r['auc']:.4f}" if "auc" in r else "-",
                    "train_s": f"{r['train_seconds']:.1f}" if "train_seconds" in r else "-",
                }
            )
        for f in failures:
            summary_rows.append(
                {
                    "config": f["source"],
                    "scenario": "-",
                    "status": "FAILED",
                    "accuracy": "-",
                    "auc": "-",
                    "train_s": "-",
                }
            )
        print(format_table(summary_rows, title=f"repro run: {len(results)}/{len(sources)} ok"))

    if args.json:
        sanitised = [
            {k: v for k, v in r.items() if k not in ("network", "masks", "mask_evolution")}
            for r in results
        ]
        if directory_mode or len(sources) > 1:
            report: object = sanitised + [
                {"source": f["source"], "error": f["error"], "failed": True} for f in failures
            ]
        else:
            report = sanitised[0] if len(sanitised) == 1 else {"runs": sanitised}
        dump_json_report(report, args.json)
    return 2 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch ``python -m repro.cli <run|train|sweep|benchmark|predict|serve> ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    commands = {
        "run": main_run,
        "train": main_train,
        "sweep": main_sweep,
        "benchmark": main_benchmark,
        "predict": main_predict,
        "serve": main_serve,
    }
    usage = f"usage: python -m repro.cli {{{','.join(commands)}}} ..."
    if not argv:
        print(usage, file=sys.stderr)
        return 2
    if argv[0] in ("-h", "--help"):
        print(usage)
        return 0
    command, rest = argv[0], argv[1:]
    if command in commands:
        from repro.exceptions import ReproError

        try:
            return commands[command](rest)
        except ReproError as exc:
            # The CLI's error contract: a pathed one-line message and exit 2,
            # never a traceback.  Subcommand mains still *raise* (tests call
            # them directly); only the dispatcher renders.
            print(f"error: {exc}", file=sys.stderr)
            return 2
    print(f"unknown command {command!r}", file=sys.stderr)
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
