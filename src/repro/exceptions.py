"""Exception hierarchy used across the :mod:`repro` package.

Keeping a small, explicit hierarchy makes it possible for callers to
distinguish configuration mistakes (``ConfigurationError``) from data
problems (``DataError``) and from internal invariant violations
(``BackendError``, ``SerializationError``) without string matching.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """Raised when a user-supplied hyper-parameter or option is invalid."""


class ConfigError(ConfigurationError):
    """Raised by :mod:`repro.config` on invalid experiment configurations.

    Unlike the generic :class:`ConfigurationError` it always carries the
    full dotted path to the offending field (``training.comm_overlap``,
    ``hyperopt.space.model.density.low`` ...), so tooling — and humans
    running ``repro run`` — can point at exactly one line of the config.
    """

    def __init__(self, path: str, message: str) -> None:
        self.path = str(path)
        super().__init__(f"{self.path}: {message}")


class DataError(ReproError, ValueError):
    """Raised when input data fails validation (shape, dtype, encoding)."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when prediction is requested from an untrained model."""


class BackendError(ReproError, RuntimeError):
    """Raised when a compute backend cannot execute the requested kernel."""


class SerializationError(DataError, RuntimeError):
    """Raised when a model state file cannot be written or restored.

    Subclasses :class:`DataError` so callers validating untrusted on-disk
    blobs (truncated downloads, corrupt model files) can catch one data
    category; the ``RuntimeError`` base is kept for backward compatibility.
    """


class CheckpointError(DataError):
    """Raised by :mod:`repro.checkpoint` on invalid or corrupt checkpoints.

    Always carries the filesystem path of the offending checkpoint (or
    manifest) so a failed resume points at exactly one file instead of a
    numpy traceback.
    """

    def __init__(self, path, message: str) -> None:
        self.path = str(path)
        super().__init__(f"{self.path}: {message}")


class FaultInjected(ReproError, RuntimeError):
    """Raised by :mod:`repro.faults` rules configured with ``mode=raise``.

    Lets in-process tests exercise driver-kill and I/O fault paths without
    actually terminating the interpreter.
    """


class SearchError(ReproError, RuntimeError):
    """Raised by the hyper-parameter search drivers on invalid usage."""


class VisualizationError(ReproError, RuntimeError):
    """Raised by the in-situ visualization pipeline."""
