"""repro: a StreamBrain-style BCPNN framework and Higgs-classification reproduction.

This package reproduces *"Higgs Boson Classification: Brain-inspired BCPNN
Learning with StreamBrain"* (Svedin, Podobas, Chien & Markidis, CLUSTER
2021): the BCPNN learning rule with structural plasticity, a Keras-like
network front end, multiple compute backends, the Higgs preprocessing
pipeline, in-situ receptive-field visualization, hyper-parameter search and
the full evaluation harness.

Quick start::

    from repro.datasets import make_higgs_splits, QuantileOneHotEncoder
    from repro.core import Network, StructuralPlasticityLayer, SGDClassifier, InputSpec

    splits = make_higgs_splits(n_samples=10000, seed=0)
    encoder = QuantileOneHotEncoder(n_bins=10).fit(splits.train.features)
    net = Network(seed=0)
    net.add(StructuralPlasticityLayer(n_hypercolumns=1, n_minicolumns=200, density=0.4))
    net.add(SGDClassifier(n_classes=2))
    net.fit(encoder.transform(splits.train.features), splits.train.labels,
            input_spec=InputSpec.from_encoder(encoder))
    print(net.evaluate(encoder.transform(splits.test.features), splits.test.labels))
"""

from repro.version import __version__
from repro import (
    backend,
    baselines,
    comm,
    core,
    datasets,
    engine,
    experiments,
    hyperopt,
    instrumentation,
    metrics,
    serving,
    visualization,
)
from repro.core import (
    BCPNNClassifier,
    BCPNNHyperParameters,
    InputSpec,
    Network,
    SGDClassifier,
    StructuralPlasticityLayer,
    TrainingSchedule,
)

__all__ = [
    "__version__",
    "backend",
    "baselines",
    "core",
    "datasets",
    "engine",
    "experiments",
    "hyperopt",
    "instrumentation",
    "metrics",
    "serving",
    "visualization",
    "BCPNNClassifier",
    "BCPNNHyperParameters",
    "InputSpec",
    "Network",
    "SGDClassifier",
    "StructuralPlasticityLayer",
    "TrainingSchedule",
]
