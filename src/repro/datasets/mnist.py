"""Procedural MNIST-like digit generator.

Figure 1 of the paper illustrates structural plasticity on MNIST: the HCUs'
receptive fields converge onto the informative central pixels of handwritten
digits.  The real MNIST files are not available offline, so this module
renders 28x28 digit images procedurally: each digit class is a set of
line/arc strokes on a canonical 20x20 glyph, randomly translated, scaled,
thickened and corrupted with pixel noise.  What matters for the experiment —
that information concentrates in the image centre while the fringes are
blank — is preserved by construction, and a loader for real IDX files is
included for completeness.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_rng

__all__ = ["SyntheticDigits", "load_digits", "read_idx_images", "read_idx_labels"]

IMAGE_SIZE = 28
GLYPH_SIZE = 20

# Stroke descriptions per digit on a unit square [0,1]^2: each stroke is a
# pair of endpoints; arcs are approximated by polylines.
def _circle(
    cx: float, cy: float, r: float, n: int = 12, start: float = 0.0, stop: float = 2 * np.pi
):
    angles = np.linspace(start, stop, n)
    pts = [(cx + r * np.cos(a), cy + r * np.sin(a)) for a in angles]
    return list(zip(pts[:-1], pts[1:]))


_DIGIT_STROKES: Dict[int, List[Tuple[Tuple[float, float], Tuple[float, float]]]] = {
    0: _circle(0.5, 0.5, 0.38),
    1: [((0.5, 0.08), (0.5, 0.92)), ((0.5, 0.08), (0.32, 0.28))],
    2: _circle(0.5, 0.3, 0.25, start=np.pi, stop=2.2 * np.pi)
    + [((0.72, 0.42), (0.25, 0.9)), ((0.25, 0.9), (0.78, 0.9))],
    3: _circle(0.5, 0.3, 0.22, start=np.pi * 0.8, stop=2.3 * np.pi)
    + _circle(0.5, 0.7, 0.22, start=np.pi * 1.7, stop=3.2 * np.pi),
    4: [((0.65, 0.08), (0.65, 0.92)), ((0.65, 0.08), (0.25, 0.6)), ((0.25, 0.6), (0.85, 0.6))],
    5: [((0.75, 0.1), (0.3, 0.1)), ((0.3, 0.1), (0.3, 0.48))]
    + _circle(0.5, 0.68, 0.24, start=np.pi * 1.4, stop=3.1 * np.pi),
    6: _circle(0.5, 0.68, 0.24) + [((0.3, 0.68), (0.45, 0.1))],
    7: [((0.22, 0.1), (0.8, 0.1)), ((0.8, 0.1), (0.42, 0.92))],
    8: _circle(0.5, 0.3, 0.2) + _circle(0.5, 0.72, 0.24),
    9: _circle(0.5, 0.32, 0.24) + [((0.72, 0.32), (0.6, 0.9))],
}


class SyntheticDigits:
    """Render digit images procedurally.

    Parameters
    ----------
    noise:
        Standard deviation of additive pixel noise (images are in [0, 1]).
    jitter:
        Maximum absolute translation (pixels) applied to each glyph.
    thickness:
        Stroke thickness in pixels.
    seed:
        RNG seed.
    """

    def __init__(
        self, noise: float = 0.08, jitter: int = 3, thickness: float = 1.4, seed=None
    ) -> None:
        if noise < 0:
            raise DataError("noise must be non-negative")
        if jitter < 0:
            raise DataError("jitter must be non-negative")
        if thickness <= 0:
            raise DataError("thickness must be positive")
        self.noise = float(noise)
        self.jitter = int(jitter)
        self.thickness = float(thickness)
        self._rng = as_rng(seed)

    def render_digit(self, digit: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Render one ``28x28`` image of ``digit`` (values in [0, 1])."""
        if digit not in _DIGIT_STROKES:
            raise DataError(f"digit must be 0-9, got {digit}")
        rng = rng or self._rng
        canvas = np.zeros((IMAGE_SIZE, IMAGE_SIZE), dtype=np.float64)
        scale = GLYPH_SIZE * rng.uniform(0.85, 1.05)
        dx = (IMAGE_SIZE - scale) / 2 + rng.integers(-self.jitter, self.jitter + 1)
        dy = (IMAGE_SIZE - scale) / 2 + rng.integers(-self.jitter, self.jitter + 1)
        yy, xx = np.mgrid[0:IMAGE_SIZE, 0:IMAGE_SIZE]
        for (x0, y0), (x1, y1) in _DIGIT_STROKES[digit]:
            ax, ay = x0 * scale + dx, y0 * scale + dy
            bx, by = x1 * scale + dx, y1 * scale + dy
            # Distance from every pixel centre to the segment (a, b).
            abx, aby = bx - ax, by - ay
            ab2 = abx * abx + aby * aby
            if ab2 < 1e-9:
                t = np.zeros_like(xx, dtype=np.float64)
            else:
                t = np.clip(((xx - ax) * abx + (yy - ay) * aby) / ab2, 0.0, 1.0)
            px = ax + t * abx
            py = ay + t * aby
            dist = np.sqrt((xx - px) ** 2 + (yy - py) ** 2)
            canvas = np.maximum(canvas, np.clip(1.0 - dist / self.thickness, 0.0, 1.0))
        if self.noise > 0:
            canvas = canvas + rng.normal(0.0, self.noise, size=canvas.shape)
        return np.clip(canvas, 0.0, 1.0)

    def sample(
        self,
        n_samples: int,
        digits: Sequence[int] = tuple(range(10)),
    ) -> Dataset:
        """Generate a dataset of flattened digit images."""
        if n_samples <= 0:
            raise DataError("n_samples must be positive")
        digits = list(digits)
        if not digits or any(d not in _DIGIT_STROKES for d in digits):
            raise DataError("digits must be a non-empty subset of 0-9")
        rng = self._rng
        labels = rng.integers(0, len(digits), size=n_samples)
        images = np.empty((n_samples, IMAGE_SIZE * IMAGE_SIZE), dtype=np.float64)
        for i in range(n_samples):
            images[i] = self.render_digit(digits[labels[i]], rng).ravel()
        return Dataset(
            features=images,
            labels=np.asarray([digits.index(digits[lab]) for lab in labels], dtype=np.int64),
            feature_names=[f"px_{r}_{c}" for r in range(IMAGE_SIZE) for c in range(IMAGE_SIZE)],
            name="digits-synthetic",
            metadata={"synthetic": True, "image_shape": (IMAGE_SIZE, IMAGE_SIZE), "digits": digits},
        )


def read_idx_images(path: Union[str, Path]) -> np.ndarray:
    """Read an MNIST IDX image file into ``(n, rows*cols)`` float [0, 1]."""
    path = Path(path)
    with open(path, "rb") as handle:
        magic, count, rows, cols = struct.unpack(">IIII", handle.read(16))
        if magic != 2051:
            raise DataError(f"{path} is not an IDX image file (magic={magic})")
        data = np.frombuffer(handle.read(count * rows * cols), dtype=np.uint8)
    return data.reshape(count, rows * cols).astype(np.float64) / 255.0


def read_idx_labels(path: Union[str, Path]) -> np.ndarray:
    """Read an MNIST IDX label file."""
    path = Path(path)
    with open(path, "rb") as handle:
        magic, count = struct.unpack(">II", handle.read(8))
        if magic != 2049:
            raise DataError(f"{path} is not an IDX label file (magic={magic})")
        data = np.frombuffer(handle.read(count), dtype=np.uint8)
    return data.astype(np.int64)


def load_digits(
    n_samples: int = 2000,
    digits: Sequence[int] = tuple(range(10)),
    images_path: Optional[Union[str, Path]] = None,
    labels_path: Optional[Union[str, Path]] = None,
    seed=None,
) -> Dataset:
    """Load real MNIST IDX files when provided, otherwise synthesise digits."""
    if images_path is not None and labels_path is not None:
        images = read_idx_images(images_path)
        labels = read_idx_labels(labels_path)
        if images.shape[0] != labels.shape[0]:
            raise DataError("IDX image and label files disagree on sample count")
        keep = np.isin(labels, list(digits))
        images, labels = images[keep][:n_samples], labels[keep][:n_samples]
        remap = {d: i for i, d in enumerate(sorted(set(digits)))}
        labels = np.asarray([remap[int(lab)] for lab in labels], dtype=np.int64)
        return Dataset(
            features=images,
            labels=labels,
            name="mnist",
            metadata={"synthetic": False},
        )
    return SyntheticDigits(seed=seed).sample(n_samples, digits=digits)
