"""Dataset loaders, generators and preprocessing.

The paper uses the UCI HIGGS dataset (11M simulated collision events, 28
features).  That file cannot be downloaded in this environment, so the
package provides a physics-inspired synthetic generator with the identical
schema and a loader that transparently prefers the real ``HIGGS.csv.gz`` if
it is present (see DESIGN.md, substitution table).  A procedural MNIST-like
digit generator backs the receptive-field illustration experiments.
"""

from repro.datasets.base import Dataset, DatasetSplits
from repro.datasets.higgs import (
    HIGGS_FEATURE_NAMES,
    HIGGS_LOW_LEVEL,
    HIGGS_HIGH_LEVEL,
    SyntheticHiggsGenerator,
    load_higgs,
    make_higgs_splits,
)
from repro.datasets.mnist import SyntheticDigits, load_digits
from repro.datasets.preprocessing import (
    QuantileOneHotEncoder,
    balanced_subsample,
    standardize,
)
from repro.datasets.splits import train_test_split, stratified_kfold
from repro.datasets.registry import (
    register_dataset,
    get_dataset,
    list_datasets,
    SplitSpec,
    ScenarioSpec,
    register_scenario,
    get_scenario,
    list_scenarios,
    scenario_catalog,
)
from repro.datasets.stream import Batch, BatchStream

__all__ = [
    "Dataset",
    "DatasetSplits",
    "Batch",
    "BatchStream",
    "HIGGS_FEATURE_NAMES",
    "HIGGS_LOW_LEVEL",
    "HIGGS_HIGH_LEVEL",
    "SyntheticHiggsGenerator",
    "load_higgs",
    "make_higgs_splits",
    "SyntheticDigits",
    "load_digits",
    "QuantileOneHotEncoder",
    "balanced_subsample",
    "standardize",
    "train_test_split",
    "stratified_kfold",
    "register_dataset",
    "get_dataset",
    "list_datasets",
    "SplitSpec",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "scenario_catalog",
]
