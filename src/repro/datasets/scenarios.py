"""Seeded synthetic scenario generators and their declarative preparation.

Each scenario is a named, *fully deterministic* data regime: a generator
(seed -> identical bytes, test-enforced), a declarative split
(:class:`~repro.datasets.registry.SplitSpec`) and a per-scenario default
config overlay.  The built-ins cover the regimes a tabular classifier meets
in production:

========================  =====================================================
``higgs``                 The paper's balanced synthetic HIGGS benchmark.
``imbalance``             Rare-signal regime (10% positives by default); the
                          split keeps the imbalance instead of rebalancing.
``label-noise``           Symmetric label flips at a configurable rate.
``covariate-drift``       Feature distributions drift over event index; the
                          *sequential* split trains on early events and tests
                          on late (drifted) ones.
``wide-sparse``           Wide feature matrix with few informative columns —
                          the regime the block-sparse execution plan targets.
``noisy-detector``        HIGGS with degraded detector resolution and heavy
                          pileup (hard, heavily overlapping classes).
========================  =====================================================

All generators flow into the same preprocessing as the paper's pipeline
(balanced subsample where the split says so, stratified or sequential split,
quantile one-hot encoding), so every scenario exercises training, serving
and the comm fabric end-to-end through ``repro run``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.datasets.base import Dataset, DatasetSplits
from repro.datasets.higgs import load_higgs
from repro.datasets.preprocessing import QuantileOneHotEncoder, balanced_subsample
from repro.datasets.splits import train_test_split
from repro.exceptions import ConfigError, DataError
from repro.utils.rng import as_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.config.schema import DatasetSection
    from repro.datasets.registry import ScenarioSpec
    from repro.experiments.higgs_pipeline import HiggsData

__all__ = [
    "generate_higgs",
    "generate_label_noise",
    "generate_covariate_drift",
    "generate_wide_sparse",
    "prepare_scenario_data",
]


# -------------------------------------------------------------- generators
def generate_higgs(
    n_events: int,
    seed=None,
    signal_fraction: float = 0.5,
    path: Optional[str] = None,
    **generator_kwargs,
) -> Dataset:
    """HIGGS-schema events (real file when available, synthetic otherwise).

    ``generator_kwargs`` (``jet_energy_resolution``, ``pileup_jet_fraction``,
    ``met_noise``, ``lepton_energy_resolution``) reach
    :class:`~repro.datasets.higgs.SyntheticHiggsGenerator` unchanged.
    """
    return load_higgs(
        n_samples=n_events,
        path=path,
        signal_fraction=signal_fraction,
        seed=seed,
        generator_kwargs=generator_kwargs or None,
    )


def generate_label_noise(
    n_events: int, seed=None, label_noise: float = 0.15, **higgs_kwargs
) -> Dataset:
    """HIGGS events whose labels are symmetrically flipped at ``label_noise``."""
    if not 0.0 <= label_noise < 0.5:
        raise DataError(f"label_noise must be in [0, 0.5), got {label_noise}")
    rng_holder = as_rng(seed)
    dataset = generate_higgs(n_events, seed=rng_holder, **higgs_kwargs)
    flip = rng_holder.random(dataset.n_samples) < label_noise
    labels = np.where(flip, 1 - dataset.labels, dataset.labels)
    return Dataset(
        features=dataset.features,
        labels=labels,
        feature_names=dataset.feature_names,
        name="higgs-label-noise",
        metadata=dict(
            dataset.metadata, label_noise=float(label_noise), n_flipped=int(flip.sum())
        ),
    )


def generate_covariate_drift(
    n_events: int, seed=None, drift_strength: float = 0.75, **higgs_kwargs
) -> Dataset:
    """HIGGS events whose feature distribution drifts over the event index.

    Each column is shifted by ``drift_strength * t * column_std`` where
    ``t`` runs 0 -> 1 over the event index.  Combined with the scenario's
    *sequential* split this trains on the early (undrifted) regime and
    evaluates on the late (drifted) one — the canonical covariate-shift
    stress test for a deployed model.
    """
    if drift_strength < 0:
        raise DataError(f"drift_strength must be non-negative, got {drift_strength}")
    dataset = generate_higgs(n_events, seed=seed, **higgs_kwargs)
    t = np.linspace(0.0, 1.0, dataset.n_samples)[:, None]
    scale = dataset.features.std(axis=0, keepdims=True)
    features = dataset.features + drift_strength * t * scale
    return Dataset(
        features=features,
        labels=dataset.labels,
        feature_names=dataset.feature_names,
        name="higgs-covariate-drift",
        metadata=dict(dataset.metadata, drift_strength=float(drift_strength)),
    )


def generate_wide_sparse(
    n_events: int,
    seed=None,
    n_features: int = 96,
    n_informative: int = 12,
    class_separation: float = 1.3,
    signal_fraction: float = 0.5,
) -> Dataset:
    """Wide tabular regime: many columns, few informative, Gaussian classes.

    The informative columns carry class-dependent means; the rest are pure
    noise.  With the scenario's low default ``model.density`` this is the
    regime the structural-plasticity mask (and the block-sparse gather-GEMM
    plan built on it) is designed to exploit.
    """
    if n_features < 2 or not 1 <= n_informative <= n_features:
        raise DataError(
            f"need 1 <= n_informative ({n_informative}) <= n_features ({n_features}) and "
            "n_features >= 2"
        )
    rng = as_rng(seed)
    labels = (rng.random(n_events) < signal_fraction).astype(np.int64)
    means = rng.normal(0.0, class_separation, size=(2, n_informative))
    features = rng.normal(0.0, 1.0, size=(n_events, n_features))
    features[:, :n_informative] += means[labels]
    return Dataset(
        features=features,
        labels=labels,
        feature_names=[f"f{i}" for i in range(n_features)],
        name="wide-sparse",
        metadata={
            "generator": "generate_wide_sparse",
            "n_informative": int(n_informative),
            "class_separation": float(class_separation),
            "synthetic": True,
        },
    )


# ------------------------------------------------------------- preparation
def _sequential_split(dataset: Dataset, test_fraction: float) -> DatasetSplits:
    """Train on the first events, test on the last — order is meaningful."""
    n_test = max(1, int(round(dataset.n_samples * test_fraction)))
    n_train = dataset.n_samples - n_test
    if n_train < 1:
        raise DataError("sequential split leaves no training rows")
    train = dataset.subset(np.arange(n_train), name=f"{dataset.name}-train")
    test = dataset.subset(np.arange(n_train, dataset.n_samples), name=f"{dataset.name}-test")
    return DatasetSplits(train=train, validation=None, test=test)


def prepare_scenario_data(
    spec: "ScenarioSpec", section: "DatasetSection", seed: int
) -> "HiggsData":
    """Generate, split and encode one scenario into train/test matrices.

    The RNG threads *sequentially* through generation, (optional) balanced
    subsampling and the split — exactly the order the paper's
    :func:`~repro.experiments.higgs_pipeline.prepare_higgs_data` uses — so
    the ``higgs`` scenario is bitwise-identical to the historical flag path
    (test-enforced).
    """
    from repro.experiments.higgs_pipeline import HiggsData
    from repro.core import InputSpec

    rng = as_rng(seed)
    try:
        dataset = spec.generate(n_events=section.n_events, seed=rng, **dict(section.params))
    except TypeError as exc:
        raise ConfigError(
            "dataset.params",
            f"scenario '{spec.name}' rejected the generator parameters: {exc}",
        ) from exc
    split = spec.split
    if split.kind == "sequential":
        splits = _sequential_split(dataset, section.test_fraction)
    else:
        if split.balanced:
            dataset = balanced_subsample(dataset, rng=rng)
        train, test = train_test_split(dataset, section.test_fraction, rng=rng, stratify=True)
        splits = DatasetSplits(train=train, validation=None, test=test)
    encoder = QuantileOneHotEncoder(n_bins=section.n_bins).fit(splits.train.features)
    return HiggsData(
        x_train=encoder.transform(splits.train.features),
        y_train=splits.train.labels,
        x_test=encoder.transform(splits.test.features),
        y_test=splits.test.labels,
        encoder=encoder,
        input_spec=InputSpec.from_encoder(encoder),
        splits=splits,
    )
