"""Minibatch streaming for the execution engine.

:class:`BatchStream` is the single place minibatch chunking happens: the
network's ``fit`` loop, the experiment pipelines and the benchmarks all
iterate the same object, so batch-boundary behaviour (remainder batches,
shuffling determinism, drop-last) is defined once.

Two execution modes:

* synchronous (default) — batches are materialised on demand.  Without
  shuffling the batches are contiguous **views** of the source arrays (zero
  copy); with shuffling they are fancy-indexed copies in the order drawn
  from the stream's RNG.
* prefetch — a background thread gathers up to ``prefetch`` batches ahead of
  the consumer, overlapping the (GIL-releasing) gather/copy with the
  consumer's BLAS-bound compute.  The batch order is drawn before the thread
  starts, so prefetching never changes the stream's determinism.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.exceptions import ConfigurationError, DataError
from repro.utils.rng import as_rng

__all__ = ["Batch", "BatchStream"]


@dataclass
class Batch:
    """One minibatch: features, optional labels and their source indices."""

    x: np.ndarray
    y: Optional[np.ndarray]
    indices: np.ndarray
    ordinal: int

    @property
    def size(self) -> int:
        return int(self.x.shape[0])


class BatchStream:
    """Deterministic minibatch iterator with chunking and optional prefetch.

    Parameters
    ----------
    x:
        2-D feature matrix ``(n_samples, n_features)``.
    y:
        Optional label vector aligned with ``x``.
    batch_size:
        Rows per batch; the final batch holds the remainder unless
        ``drop_last`` is set.
    shuffle:
        Draw a fresh permutation from ``rng`` at the start of every epoch
        (i.e. every ``__iter__`` call) — sharing one generator between the
        stream and the caller reproduces the legacy ``fit`` batch order
        exactly.
    rng:
        Seed or :class:`numpy.random.Generator` used for shuffling.
    drop_last:
        Drop the final batch when it is smaller than ``batch_size``.
    prefetch:
        Number of batches a background thread may prepare ahead of the
        consumer; ``0`` disables the thread entirely.
    """

    def __init__(
        self,
        x: np.ndarray,
        y: Optional[np.ndarray] = None,
        batch_size: int = 128,
        shuffle: bool = False,
        rng=None,
        drop_last: bool = False,
        prefetch: int = 0,
    ) -> None:
        self.x = np.asarray(x)
        if self.x.ndim != 2:
            raise DataError(f"x must be a 2-D matrix, got shape {self.x.shape}")
        self.y = None if y is None else np.asarray(y)
        if self.y is not None and self.y.shape[0] != self.x.shape[0]:
            raise DataError("x and y are misaligned")
        if int(batch_size) <= 0:
            raise ConfigurationError("batch_size must be positive")
        if int(prefetch) < 0:
            raise ConfigurationError("prefetch must be non-negative")
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.prefetch = int(prefetch)
        self._rng = as_rng(rng)

    # ------------------------------------------------------------- sizing
    @property
    def n_samples(self) -> int:
        return int(self.x.shape[0])

    def __len__(self) -> int:
        """Number of batches one epoch yields."""
        if self.drop_last:
            return self.n_samples // self.batch_size
        return -(-self.n_samples // self.batch_size)

    # ----------------------------------------------------------- iteration
    def _epoch_order(self) -> Optional[np.ndarray]:
        """Permutation for this epoch, or ``None`` for in-order streaming."""
        if self.shuffle:
            return self._rng.permutation(self.n_samples)
        return None

    def _gather(self, order: Optional[np.ndarray], start: int, stop: int, ordinal: int) -> Batch:
        if order is None:
            indices = np.arange(start, stop)
            # Contiguous views: zero-copy for the in-order streaming case.
            bx = self.x[start:stop]
            by = None if self.y is None else self.y[start:stop]
        else:
            indices = order[start:stop]
            bx = self.x[indices]
            by = None if self.y is None else self.y[indices]
        return Batch(x=bx, y=by, indices=indices, ordinal=ordinal)

    def _iter_sync(self, order: Optional[np.ndarray]) -> Iterator[Batch]:
        n = self.n_samples
        ordinal = 0
        for start in range(0, n, self.batch_size):
            stop = min(start + self.batch_size, n)
            if self.drop_last and stop - start < self.batch_size:
                break
            yield self._gather(order, start, stop, ordinal)
            ordinal += 1

    def _iter_prefetch(self, order: Optional[np.ndarray]) -> Iterator[Batch]:
        out: "queue.Queue" = queue.Queue(maxsize=self.prefetch)
        sentinel = object()
        abandoned = threading.Event()

        def _put(item) -> bool:
            # Bounded put that gives up if the consumer abandoned the epoch,
            # so an early `break` never leaves the worker blocked forever.
            while not abandoned.is_set():
                try:
                    out.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        def worker() -> None:
            try:
                for batch in self._iter_sync(order):
                    if not _put(batch):
                        return
                _put(sentinel)
            except BaseException as exc:  # propagate into the consumer
                _put(exc)

        thread = threading.Thread(target=worker, name="repro-batch-prefetch", daemon=True)
        thread.start()
        try:
            while True:
                item = out.get()
                if item is sentinel:
                    break
                if isinstance(item, BaseException):
                    raise item
                yield item
        finally:
            abandoned.set()
            thread.join(timeout=1.0)

    def __iter__(self) -> Iterator[Batch]:
        order = self._epoch_order()
        if self.prefetch > 0:
            return self._iter_prefetch(order)
        return self._iter_sync(order)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BatchStream(n={self.n_samples}, batch_size={self.batch_size}, "
            f"shuffle={self.shuffle}, prefetch={self.prefetch})"
        )
