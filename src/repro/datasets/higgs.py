"""HIGGS dataset: real-file loader plus a physics-inspired synthetic generator.

The UCI HIGGS dataset (Baldi, Sadowski & Whiteson, 2014) contains 11 million
simulated collision events with 28 features: 21 low-level reconstructed
kinematic quantities (lepton, missing energy, four jets) and 7 high-level
invariant-mass features derived from them.  The signal process is a heavy
Higgs cascade ``gg -> H0 -> W H+- -> W W h0 -> l nu q q b b``; the background
is top-pair production with the same observable final state.

This module provides:

* :data:`HIGGS_FEATURE_NAMES` — the canonical 28-column schema.
* :class:`SyntheticHiggsGenerator` — a generator that simulates both
  processes with real four-vector kinematics (resonance production, two-body
  decays, detector smearing, pT-ordered jets) and *derives* the 7 high-level
  features from the generated low-level ones.  This is the substitution for
  the 2.8 GB download (see DESIGN.md) and exercises exactly the same
  downstream pipeline.
* :func:`load_higgs` — returns the real dataset when a ``HIGGS.csv[.gz]``
  file is available (path argument or ``REPRO_HIGGS_PATH`` environment
  variable), otherwise a synthetic dataset of the requested size.
* :func:`make_higgs_splits` — the balanced-subset + train/test split used by
  the paper's experiments.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.datasets import kinematics as kin
from repro.datasets.base import Dataset, DatasetSplits
from repro.datasets.csvio import read_numeric_csv
from repro.datasets.preprocessing import balanced_subsample
from repro.datasets.splits import train_test_split
from repro.exceptions import DataError
from repro.utils.rng import as_rng
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "HIGGS_FEATURE_NAMES",
    "HIGGS_LOW_LEVEL",
    "HIGGS_HIGH_LEVEL",
    "SyntheticHiggsGenerator",
    "load_higgs",
    "make_higgs_splits",
]

#: Low-level feature names in UCI column order.
HIGGS_LOW_LEVEL = [
    "lepton_pt",
    "lepton_eta",
    "lepton_phi",
    "missing_energy_magnitude",
    "missing_energy_phi",
    "jet1_pt",
    "jet1_eta",
    "jet1_phi",
    "jet1_btag",
    "jet2_pt",
    "jet2_eta",
    "jet2_phi",
    "jet2_btag",
    "jet3_pt",
    "jet3_eta",
    "jet3_phi",
    "jet3_btag",
    "jet4_pt",
    "jet4_eta",
    "jet4_phi",
    "jet4_btag",
]

#: High-level (derived) feature names in UCI column order.
HIGGS_HIGH_LEVEL = ["m_jj", "m_jjj", "m_lv", "m_jlv", "m_bb", "m_wbb", "m_wwbb"]

#: Full 28-feature schema.
HIGGS_FEATURE_NAMES = HIGGS_LOW_LEVEL + HIGGS_HIGH_LEVEL

# Particle masses in GeV used by the event generator.
_M_TOP = 173.0
_M_W = 80.4
_M_HIGGS_LIGHT = 125.0
_M_HIGGS_HEAVY = 425.0
_M_HIGGS_CHARGED = 325.0
_M_B = 4.7
_M_LEPTON = 0.105  # muon mass, representative


class SyntheticHiggsGenerator:
    """Monte-Carlo style generator for HIGGS-schema events.

    Parameters
    ----------
    jet_energy_resolution:
        Fractional Gaussian smearing applied to jet transverse momenta
        (the dominant knob controlling class separability).
    lepton_energy_resolution:
        Fractional smearing of the lepton pT.
    met_noise:
        Absolute (GeV) Gaussian noise added to each missing-energy component.
    pileup_jet_fraction:
        Probability that one of the four jets is replaced by an uncorrelated
        "pileup" jet, diluting the resonance structure.
    seed:
        RNG seed (int / Generator / None).
    """

    def __init__(
        self,
        jet_energy_resolution: float = 0.14,
        lepton_energy_resolution: float = 0.02,
        met_noise: float = 12.0,
        pileup_jet_fraction: float = 0.12,
        seed=None,
    ) -> None:
        if not 0.0 <= jet_energy_resolution < 1.0:
            raise DataError("jet_energy_resolution must be in [0, 1)")
        if not 0.0 <= lepton_energy_resolution < 1.0:
            raise DataError("lepton_energy_resolution must be in [0, 1)")
        if met_noise < 0:
            raise DataError("met_noise must be non-negative")
        if not 0.0 <= pileup_jet_fraction <= 1.0:
            raise DataError("pileup_jet_fraction must be in [0, 1]")
        self.jet_energy_resolution = float(jet_energy_resolution)
        self.lepton_energy_resolution = float(lepton_energy_resolution)
        self.met_noise = float(met_noise)
        self.pileup_jet_fraction = float(pileup_jet_fraction)
        self._rng = as_rng(seed)

    # ------------------------------------------------------------- sampling
    def sample(self, n_events: int, signal_fraction: float = 0.5) -> Dataset:
        """Generate ``n_events`` events with the requested signal fraction."""
        if n_events <= 0:
            raise DataError("n_events must be positive")
        if not 0.0 <= signal_fraction <= 1.0:
            raise DataError("signal_fraction must lie in [0, 1]")
        labels = (self._rng.random(n_events) < signal_fraction).astype(np.int64)
        n_sig = int(labels.sum())
        n_bkg = n_events - n_sig
        features = np.empty((n_events, len(HIGGS_FEATURE_NAMES)), dtype=np.float64)
        if n_sig:
            features[labels == 1] = self._generate_signal(n_sig)
        if n_bkg:
            features[labels == 0] = self._generate_background(n_bkg)
        return Dataset(
            features=features,
            labels=labels,
            feature_names=list(HIGGS_FEATURE_NAMES),
            name="higgs-synthetic",
            metadata={
                "generator": "SyntheticHiggsGenerator",
                "signal_fraction": signal_fraction,
                "jet_energy_resolution": self.jet_energy_resolution,
                "pileup_jet_fraction": self.pileup_jet_fraction,
                "synthetic": True,
            },
        )

    # ----------------------------------------------------------- signal MC
    def _generate_signal(self, n: int) -> np.ndarray:
        """Heavy-Higgs cascade: H0 -> W Hpm, Hpm -> W h0, h0 -> b bbar."""
        rng = self._rng
        parent = self._produce_resonance(n, _M_HIGGS_HEAVY, pt_scale=55.0, eta_sigma=1.1)
        w1, h_charged = kin.two_body_decay(
            parent, np.full(n, _M_W), np.full(n, _M_HIGGS_CHARGED), rng
        )
        w2, h_light = kin.two_body_decay(
            h_charged, np.full(n, _M_W), np.full(n, _M_HIGGS_LIGHT), rng
        )
        b1, b2 = kin.two_body_decay(h_light, np.full(n, _M_B), np.full(n, _M_B), rng)
        # One W decays leptonically, the other hadronically.  Randomise which.
        lep_first = rng.random(n) < 0.5
        w_lep = np.where(lep_first[:, None], w1, w2)
        w_had = np.where(lep_first[:, None], w2, w1)
        lepton, neutrino = kin.two_body_decay(
            w_lep, np.full(n, _M_LEPTON), np.zeros(n), rng
        )
        q1, q2 = kin.two_body_decay(w_had, np.zeros(n), np.zeros(n), rng)
        return self._reconstruct(lepton, neutrino, [b1, b2], [q1, q2])

    # ------------------------------------------------------- background MC
    def _generate_background(self, n: int) -> np.ndarray:
        """Top-pair background: two independent tops, t -> W b."""
        rng = self._rng
        top1 = self._produce_resonance(n, _M_TOP, pt_scale=70.0, eta_sigma=1.6)
        top2 = self._produce_resonance(n, _M_TOP, pt_scale=70.0, eta_sigma=1.6)
        w1, b1 = kin.two_body_decay(top1, np.full(n, _M_W), np.full(n, _M_B), rng)
        w2, b2 = kin.two_body_decay(top2, np.full(n, _M_W), np.full(n, _M_B), rng)
        lep_first = rng.random(n) < 0.5
        w_lep = np.where(lep_first[:, None], w1, w2)
        w_had = np.where(lep_first[:, None], w2, w1)
        lepton, neutrino = kin.two_body_decay(
            w_lep, np.full(n, _M_LEPTON), np.zeros(n), rng
        )
        q1, q2 = kin.two_body_decay(w_had, np.zeros(n), np.zeros(n), rng)
        return self._reconstruct(lepton, neutrino, [b1, b2], [q1, q2])

    # --------------------------------------------------------------- common
    def _produce_resonance(
        self, n: int, mass_gev: float, pt_scale: float, eta_sigma: float
    ) -> np.ndarray:
        """Sample parent resonances with Breit-Wigner-ish mass and soft pT."""
        rng = self._rng
        width = 0.02 * mass_gev
        masses = mass_gev + width * rng.standard_cauchy(n)
        masses = np.clip(masses, 0.6 * mass_gev, 1.4 * mass_gev)
        pt_ = rng.exponential(pt_scale, size=n)
        eta_ = rng.normal(0.0, eta_sigma, size=n)
        phi_ = rng.uniform(-np.pi, np.pi, size=n)
        return kin.four_vector(pt_, eta_, phi_, masses)

    def _smear_jet(self, p4: np.ndarray) -> np.ndarray:
        rng = self._rng
        n = p4.shape[0]
        scale = np.maximum(rng.normal(1.0, self.jet_energy_resolution, size=n), 0.05)
        smeared = kin.four_vector(
            kin.pt(p4) * scale,
            kin.eta(p4) + rng.normal(0.0, 0.03, size=n),
            kin.phi(p4) + rng.normal(0.0, 0.03, size=n),
            0.0,
        )
        return smeared

    def _pileup_jet(self, n: int) -> np.ndarray:
        rng = self._rng
        return kin.four_vector(
            rng.exponential(35.0, size=n) + 20.0,
            rng.normal(0.0, 2.0, size=n),
            rng.uniform(-np.pi, np.pi, size=n),
            0.0,
        )

    def _btag_value(self, is_b: np.ndarray) -> np.ndarray:
        """Continuous b-tag discriminant: higher for genuine b jets."""
        rng = self._rng
        n = is_b.shape[0]
        b_like = np.clip(rng.normal(2.1, 0.5, size=n), 0.0, 3.5)
        light_like = np.clip(rng.normal(0.6, 0.45, size=n), 0.0, 3.5)
        # Imperfect tagging: 15% of b jets look light, 8% of light jets look b-like.
        flip_b = rng.random(n) < 0.15
        flip_l = rng.random(n) < 0.08
        tagged = np.where(
            is_b,
            np.where(flip_b, light_like, b_like),
            np.where(flip_l, b_like, light_like),
        )
        return tagged

    def _reconstruct(self, lepton, neutrino, b_jets, light_jets) -> np.ndarray:
        """Apply detector effects and flatten into the 28-feature schema."""
        rng = self._rng
        n = lepton.shape[0]

        # Lepton smearing.
        lepton_rec = kin.four_vector(
            kin.pt(lepton)
            * np.maximum(rng.normal(1.0, self.lepton_energy_resolution, size=n), 0.2),
            kin.eta(lepton),
            kin.phi(lepton),
            _M_LEPTON,
        )

        # Jet smearing + optional pileup replacement of one light jet.
        jets = [self._smear_jet(j) for j in b_jets] + [self._smear_jet(j) for j in light_jets]
        is_b = [
            np.ones(n, dtype=bool),
            np.ones(n, dtype=bool),
            np.zeros(n, dtype=bool),
            np.zeros(n, dtype=bool),
        ]
        replace = rng.random(n) < self.pileup_jet_fraction
        if np.any(replace):
            pileup = self._pileup_jet(n)
            jets[3] = np.where(replace[:, None], pileup, jets[3])
            is_b[3] = np.where(replace, False, is_b[3])

        btags = [self._btag_value(flag) for flag in is_b]

        # Missing transverse energy: negative vector sum of visible objects
        # plus noise (the neutrino is what is genuinely missing).
        met_x = neutrino[:, 1] + rng.normal(0.0, self.met_noise, size=n)
        met_y = neutrino[:, 2] + rng.normal(0.0, self.met_noise, size=n)
        met_mag = np.sqrt(met_x**2 + met_y**2)
        met_phi = np.arctan2(met_y, met_x)

        # pT-order the four jets (as the real dataset does), carrying b-tags.
        jet_stack = np.stack(jets, axis=1)  # (n, 4, 4)
        btag_stack = np.stack(btags, axis=1)  # (n, 4)
        jet_pts = kin.pt(jet_stack)
        order = np.argsort(-jet_pts, axis=1)
        rows = np.arange(n)[:, None]
        jet_stack = jet_stack[rows, order]
        btag_stack = btag_stack[rows, order]

        low = np.empty((n, len(HIGGS_LOW_LEVEL)), dtype=np.float64)
        low[:, 0] = kin.pt(lepton_rec)
        low[:, 1] = kin.eta(lepton_rec)
        low[:, 2] = kin.phi(lepton_rec)
        low[:, 3] = met_mag
        low[:, 4] = met_phi
        for j in range(4):
            base = 5 + 4 * j
            low[:, base + 0] = kin.pt(jet_stack[:, j])
            low[:, base + 1] = kin.eta(jet_stack[:, j])
            low[:, base + 2] = kin.phi(jet_stack[:, j])
            low[:, base + 3] = btag_stack[:, j]

        high = self.derive_high_level(low)
        return np.concatenate([low, high], axis=1)

    # ------------------------------------------------------------ features
    @staticmethod
    def derive_high_level(low_level: np.ndarray) -> np.ndarray:
        """Compute the 7 high-level features from the 21 low-level columns.

        The neutrino longitudinal momentum is unmeasurable, so — as in the
        original dataset construction — the "lv" masses use a massless
        neutrino with ``pz = 0`` built from the missing transverse energy.
        """
        low = np.asarray(low_level, dtype=np.float64)
        if low.ndim != 2 or low.shape[1] != len(HIGGS_LOW_LEVEL):
            raise DataError(
                f"low_level must have {len(HIGGS_LOW_LEVEL)} columns, got shape {low.shape}"
            )
        lepton = kin.four_vector(low[:, 0], low[:, 1], low[:, 2], _M_LEPTON)
        neutrino = kin.four_vector(low[:, 3], np.zeros(low.shape[0]), low[:, 4], 0.0)
        jets = []
        btags = []
        for j in range(4):
            base = 5 + 4 * j
            jets.append(kin.four_vector(low[:, base], low[:, base + 1], low[:, base + 2], 0.0))
            btags.append(low[:, base + 3])
        jets_arr = np.stack(jets, axis=1)  # (n, 4, 4)
        btag_arr = np.stack(btags, axis=1)  # (n, 4)

        # The two most b-like jets form the Higgs candidate; the other two the W.
        order_btag = np.argsort(-btag_arr, axis=1)
        rows = np.arange(low.shape[0])[:, None]
        b_cand = jets_arr[rows, order_btag[:, :2]]
        w_cand = jets_arr[rows, order_btag[:, 2:]]

        m_jj = kin.invariant_mass(w_cand[:, 0], w_cand[:, 1])
        m_jjj = kin.invariant_mass(w_cand[:, 0], w_cand[:, 1], b_cand[:, 0])
        m_lv = kin.invariant_mass(lepton, neutrino)
        m_jlv = kin.invariant_mass(jets_arr[:, 0], lepton, neutrino)
        m_bb = kin.invariant_mass(b_cand[:, 0], b_cand[:, 1])
        m_wbb = kin.invariant_mass(lepton, neutrino, b_cand[:, 0], b_cand[:, 1])
        m_wwbb = kin.invariant_mass(
            lepton, neutrino, w_cand[:, 0], w_cand[:, 1], b_cand[:, 0], b_cand[:, 1]
        )
        return np.stack([m_jj, m_jjj, m_lv, m_jlv, m_bb, m_wbb, m_wwbb], axis=1)


# ---------------------------------------------------------------- loaders
def _find_real_higgs(path: Optional[Union[str, Path]]) -> Optional[Path]:
    """Locate a real HIGGS csv file from an explicit path or the environment."""
    candidates = []
    if path is not None:
        candidates.append(Path(path))
    env = os.environ.get("REPRO_HIGGS_PATH")
    if env:
        candidates.append(Path(env))
    candidates.extend(
        [Path("data/HIGGS.csv.gz"), Path("data/HIGGS.csv"), Path("HIGGS.csv.gz"), Path("HIGGS.csv")]
    )
    for cand in candidates:
        if cand.is_file():
            return cand
    if path is not None:
        raise DataError(f"HIGGS file not found at {path}")
    return None


def load_higgs(
    n_samples: int = 20000,
    path: Optional[Union[str, Path]] = None,
    signal_fraction: float = 0.5,
    seed=None,
    generator_kwargs: Optional[Dict[str, float]] = None,
) -> Dataset:
    """Load (real file if available) or generate a HIGGS-schema dataset.

    Parameters
    ----------
    n_samples:
        Number of events to return.
    path:
        Optional path to ``HIGGS.csv``/``HIGGS.csv.gz``; ``REPRO_HIGGS_PATH``
        is also honoured.  When no file is found a synthetic dataset is
        generated (and ``metadata['synthetic']`` is set).
    signal_fraction:
        Signal prior used by the synthetic generator.
    seed:
        RNG seed for synthetic generation.
    generator_kwargs:
        Extra keyword arguments forwarded to :class:`SyntheticHiggsGenerator`.
    """
    real = _find_real_higgs(path)
    if real is not None:
        logger.info("loading real HIGGS data from %s", real)
        data = read_numeric_csv(real, max_rows=n_samples)
        if data.shape[1] != len(HIGGS_FEATURE_NAMES) + 1:
            raise DataError(
                f"expected {len(HIGGS_FEATURE_NAMES) + 1} columns in {real}, got {data.shape[1]}"
            )
        labels = data[:, 0].astype(np.int64)
        features = data[:, 1:]
        return Dataset(
            features=features,
            labels=labels,
            feature_names=list(HIGGS_FEATURE_NAMES),
            name="higgs-uci",
            metadata={"path": str(real), "synthetic": False},
        )
    generator = SyntheticHiggsGenerator(seed=seed, **(generator_kwargs or {}))
    return generator.sample(n_samples, signal_fraction=signal_fraction)


def make_higgs_splits(
    n_samples: int = 20000,
    test_fraction: float = 0.2,
    validation_fraction: float = 0.0,
    balanced: bool = True,
    seed=None,
    path: Optional[Union[str, Path]] = None,
) -> DatasetSplits:
    """Produce the balanced train/validation/test splits used by the paper.

    The paper extracts a *balanced* subset of the training portion before
    quantile encoding; ``balanced=True`` applies the same treatment to the
    full dataset prior to splitting.
    """
    rng = as_rng(seed)
    dataset = load_higgs(n_samples=n_samples, path=path, seed=rng)
    if balanced:
        dataset = balanced_subsample(dataset, rng=rng)
    train, rest = train_test_split(
        dataset, test_fraction + validation_fraction, rng=rng, stratify=True
    )
    if validation_fraction > 0:
        rel = test_fraction / (test_fraction + validation_fraction)
        validation, test = train_test_split(rest, rel, rng=rng, stratify=True)
    else:
        validation, test = None, rest
    return DatasetSplits(train=train, validation=validation, test=test)
