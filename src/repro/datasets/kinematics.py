"""Relativistic kinematics helpers for the synthetic HIGGS generator.

The UCI HIGGS dataset's high-level features are invariant masses of
combinations of the reconstructed objects (lepton, missing energy, four
jets).  To make the synthetic substitute faithful, the generator builds
events out of actual four-vectors: resonances are produced with transverse
momentum and rapidity, decayed isotropically in their rest frame, boosted to
the lab frame, smeared by a detector model, and only then flattened into the
21 low-level features.  The 7 high-level features are *derived* from the
low-level ones with the functions here, exactly as in Baldi et al. (2014).

All functions are vectorised over events: a "four-vector array" is an
``(n, 4)`` float array ordered ``(E, px, py, pz)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "four_vector",
    "pt",
    "eta",
    "phi",
    "mass",
    "invariant_mass",
    "two_body_decay",
    "boost",
    "delta_phi",
]


def four_vector(
    pt_: np.ndarray, eta_: np.ndarray, phi_: np.ndarray, m: np.ndarray = 0.0
) -> np.ndarray:
    """Build ``(E, px, py, pz)`` four-vectors from collider coordinates.

    ``pt`` is the transverse momentum, ``eta`` the pseudorapidity, ``phi``
    the azimuthal angle and ``m`` the rest mass (0 for massless objects).
    """
    pt_ = np.asarray(pt_, dtype=np.float64)
    eta_ = np.asarray(eta_, dtype=np.float64)
    phi_ = np.asarray(phi_, dtype=np.float64)
    m = np.broadcast_to(np.asarray(m, dtype=np.float64), pt_.shape)
    if np.any(pt_ < 0):
        raise DataError("transverse momentum must be non-negative")
    px = pt_ * np.cos(phi_)
    py = pt_ * np.sin(phi_)
    pz = pt_ * np.sinh(eta_)
    energy = np.sqrt(px**2 + py**2 + pz**2 + m**2)
    return np.stack([energy, px, py, pz], axis=-1)


def pt(p4: np.ndarray) -> np.ndarray:
    """Transverse momentum of four-vectors."""
    p4 = np.asarray(p4, dtype=np.float64)
    return np.sqrt(p4[..., 1] ** 2 + p4[..., 2] ** 2)


def eta(p4: np.ndarray) -> np.ndarray:
    """Pseudorapidity; clips the polar angle away from the beam axis."""
    p4 = np.asarray(p4, dtype=np.float64)
    p = np.sqrt(p4[..., 1] ** 2 + p4[..., 2] ** 2 + p4[..., 3] ** 2)
    pz = p4[..., 3]
    # Guard against p == |pz| (exactly along the beam) producing infinities.
    ratio = np.clip(pz / np.maximum(p, 1e-12), -0.999999999, 0.999999999)
    return np.arctanh(ratio)


def phi(p4: np.ndarray) -> np.ndarray:
    """Azimuthal angle in ``(-pi, pi]``."""
    p4 = np.asarray(p4, dtype=np.float64)
    return np.arctan2(p4[..., 2], p4[..., 1])


def mass(p4: np.ndarray) -> np.ndarray:
    """Invariant (rest) mass of four-vectors; negative radicands clip to 0."""
    p4 = np.asarray(p4, dtype=np.float64)
    m2 = p4[..., 0] ** 2 - p4[..., 1] ** 2 - p4[..., 2] ** 2 - p4[..., 3] ** 2
    return np.sqrt(np.maximum(m2, 0.0))


def invariant_mass(*vectors: np.ndarray) -> np.ndarray:
    """Invariant mass of the sum of several four-vector arrays."""
    if not vectors:
        raise DataError("invariant_mass requires at least one four-vector array")
    total = np.zeros_like(np.asarray(vectors[0], dtype=np.float64))
    for vec in vectors:
        total = total + np.asarray(vec, dtype=np.float64)
    return mass(total)


def delta_phi(phi1: np.ndarray, phi2: np.ndarray) -> np.ndarray:
    """Azimuthal separation wrapped into ``(-pi, pi]``."""
    d = np.asarray(phi1, dtype=np.float64) - np.asarray(phi2, dtype=np.float64)
    return np.mod(d + np.pi, 2 * np.pi) - np.pi


def boost(p4: np.ndarray, beta: np.ndarray) -> np.ndarray:
    """Lorentz boost of four-vectors by velocity vector ``beta`` (shape (..., 3)).

    Implements the standard general boost matrix applied row-wise; fully
    vectorised over events.
    """
    p4 = np.asarray(p4, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    if beta.shape[-1] != 3:
        raise DataError("beta must have a trailing dimension of 3")
    b2 = np.sum(beta**2, axis=-1)
    if np.any(b2 >= 1.0):
        raise DataError("boost velocity must be < 1 (in units of c)")
    gamma = 1.0 / np.sqrt(1.0 - b2)
    bp = np.sum(beta * p4[..., 1:], axis=-1)  # beta . p
    # gamma2 = (gamma - 1) / beta^2, finite limit 1/2 as beta -> 0.
    gamma2 = np.where(b2 > 1e-14, (gamma - 1.0) / np.maximum(b2, 1e-14), 0.5)
    e_new = gamma * (p4[..., 0] + bp)
    coeff = (gamma2 * bp + gamma * p4[..., 0])[..., None]
    p_new = p4[..., 1:] + coeff * beta
    return np.concatenate([e_new[..., None], p_new], axis=-1)


def two_body_decay(
    parent: np.ndarray,
    m1: np.ndarray,
    m2: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Decay each parent four-vector into two daughters of masses ``m1``/``m2``.

    The decay is isotropic in the parent rest frame; daughters are boosted
    back to the lab frame.  If the parent mass is below ``m1 + m2`` the
    daughter masses are scaled down proportionally (keeps the generator
    robust to smeared inputs).
    """
    parent = np.asarray(parent, dtype=np.float64)
    n = parent.shape[0]
    m_parent = mass(parent)
    m1 = np.broadcast_to(np.asarray(m1, dtype=np.float64), (n,)).copy()
    m2 = np.broadcast_to(np.asarray(m2, dtype=np.float64), (n,)).copy()

    # Rescale daughter masses when kinematically forbidden.
    total = m1 + m2
    over = total > 0.98 * m_parent
    if np.any(over):
        scale = np.where(over, 0.98 * m_parent / np.maximum(total, 1e-12), 1.0)
        m1 *= scale
        m2 *= scale

    # Momentum magnitude of the daughters in the parent rest frame.
    term = (m_parent**2 - (m1 + m2) ** 2) * (m_parent**2 - (m1 - m2) ** 2)
    p_star = np.sqrt(np.maximum(term, 0.0)) / np.maximum(2.0 * m_parent, 1e-12)

    # Isotropic direction in the rest frame.
    cos_theta = rng.uniform(-1.0, 1.0, size=n)
    sin_theta = np.sqrt(1.0 - cos_theta**2)
    azimuth = rng.uniform(-np.pi, np.pi, size=n)
    direction = np.stack(
        [sin_theta * np.cos(azimuth), sin_theta * np.sin(azimuth), cos_theta], axis=-1
    )

    e1 = np.sqrt(p_star**2 + m1**2)
    e2 = np.sqrt(p_star**2 + m2**2)
    d1_rest = np.concatenate([e1[:, None], p_star[:, None] * direction], axis=-1)
    d2_rest = np.concatenate([e2[:, None], -p_star[:, None] * direction], axis=-1)

    # Boost from the parent rest frame to the lab frame.
    beta = parent[:, 1:] / np.maximum(parent[:, 0:1], 1e-12)
    d1 = boost(d1_rest, beta)
    d2 = boost(d2_rest, beta)
    return d1, d2
