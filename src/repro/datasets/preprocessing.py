"""Preprocessing used by the Higgs pipeline.

The paper (Section V) extracts a *balanced subset* of the training set,
computes per-feature **10-quantiles**, splits each feature's distribution
into ten roughly equal-population bins and encodes every feature as a
one-hot vector of length ten.  Each original feature therefore becomes one
*input hypercolumn* with ten units — exactly the modular probability layout
the BCPNN input layer expects.

:class:`QuantileOneHotEncoder` implements that transformation (fit on train,
apply to any split), :func:`balanced_subsample` the class balancing, and
:func:`standardize` the conventional z-scoring used by the baselines.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DataError, NotFittedError
from repro.utils.rng import as_rng
from repro.utils.validation import check_array, check_positive_int

__all__ = ["QuantileOneHotEncoder", "balanced_subsample", "standardize", "Standardizer"]


class QuantileOneHotEncoder:
    """Per-feature quantile binning followed by one-hot encoding.

    Parameters
    ----------
    n_bins:
        Number of quantile bins per feature (the paper uses 10).
    dtype:
        Output dtype of the encoded matrix.

    Notes
    -----
    * Bin edges are the interior quantiles of the *fit* data; values outside
      the fitted range fall into the first/last bin, so the transform is
      total.
    * Degenerate features (constant on the fit data) still produce ``n_bins``
      columns so the hypercolumn layout stays uniform; all mass goes to bin 0.
    """

    def __init__(self, n_bins: int = 10, dtype=np.float64) -> None:
        self.n_bins = check_positive_int(n_bins, "n_bins", minimum=2)
        self.dtype = dtype
        self._edges: Optional[np.ndarray] = None  # (n_features, n_bins - 1)
        self._n_features: Optional[int] = None

    # ----------------------------------------------------------------- fit
    def fit(self, features: np.ndarray) -> "QuantileOneHotEncoder":
        """Compute interior quantile edges for every feature column."""
        X = check_array(features, name="features", ndim=2)
        quantiles = np.linspace(0.0, 1.0, self.n_bins + 1)[1:-1]
        edges = np.quantile(X, quantiles, axis=0).T  # (n_features, n_bins-1)
        # Guarantee monotonically non-decreasing edges per feature.
        edges = np.maximum.accumulate(edges, axis=1)
        self._edges = np.ascontiguousarray(edges)
        self._n_features = X.shape[1]
        return self

    @property
    def is_fitted(self) -> bool:
        return self._edges is not None

    @property
    def n_features(self) -> int:
        if self._n_features is None:
            raise NotFittedError("encoder has not been fitted")
        return self._n_features

    @property
    def edges(self) -> np.ndarray:
        if self._edges is None:
            raise NotFittedError("encoder has not been fitted")
        return self._edges

    @property
    def hypercolumn_sizes(self) -> List[int]:
        """The BCPNN input layout: one hypercolumn of ``n_bins`` units per feature."""
        return [self.n_bins] * self.n_features

    @property
    def n_output_units(self) -> int:
        return self.n_features * self.n_bins

    # ----------------------------------------------------------- transform
    def bin_indices(self, features: np.ndarray) -> np.ndarray:
        """Return the bin index of every value, shape ``(n_samples, n_features)``."""
        if self._edges is None:
            raise NotFittedError("encoder must be fitted before transforming data")
        X = check_array(features, name="features", ndim=2)
        if X.shape[1] != self._n_features:
            raise DataError(
                f"expected {self._n_features} features, got {X.shape[1]}"
            )
        indices = np.empty(X.shape, dtype=np.int64)
        # Loop over features (tens), vectorised over samples (thousands).
        for f in range(X.shape[1]):
            indices[:, f] = np.searchsorted(self._edges[f], X[:, f], side="right")
        return indices

    def transform(self, features: np.ndarray) -> np.ndarray:
        """One-hot encode: output shape ``(n_samples, n_features * n_bins)``."""
        indices = self.bin_indices(features)
        n_samples, n_features = indices.shape
        out = np.zeros((n_samples, n_features * self.n_bins), dtype=self.dtype)
        cols = indices + np.arange(n_features)[None, :] * self.n_bins
        rows = np.repeat(np.arange(n_samples), n_features)
        out[rows, cols.ravel()] = 1.0
        return out

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)

    def inverse_transform_indices(self, encoded: np.ndarray) -> np.ndarray:
        """Recover bin indices from an encoded (or soft probability) matrix."""
        if self._edges is None:
            raise NotFittedError("encoder must be fitted")
        X = check_array(encoded, name="encoded", ndim=2)
        if X.shape[1] != self.n_output_units:
            raise DataError(
                f"expected {self.n_output_units} encoded columns, got {X.shape[1]}"
            )
        cube = X.reshape(X.shape[0], self.n_features, self.n_bins)
        return cube.argmax(axis=2)

    def bin_representative_values(self) -> np.ndarray:
        """A representative raw value per (feature, bin): the edge midpoints.

        For the outer bins the nearest interior edge is used.  Only meaningful
        for diagnostics / visualisation, not an exact inverse.
        """
        if self._edges is None:
            raise NotFittedError("encoder must be fitted")
        edges = self._edges
        reps = np.empty((self.n_features, self.n_bins), dtype=np.float64)
        reps[:, 0] = edges[:, 0]
        reps[:, -1] = edges[:, -1]
        for b in range(1, self.n_bins - 1):
            reps[:, b] = 0.5 * (edges[:, b - 1] + edges[:, b])
        return reps


class Standardizer:
    """Column-wise z-scoring with stored statistics (used by baselines)."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    def fit(self, features: np.ndarray) -> "Standardizer":
        X = check_array(features, name="features", ndim=2)
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        std[std < 1e-12] = 1.0
        self.std_ = std
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        if self.mean_ is None or self.std_ is None:
            raise NotFittedError("Standardizer must be fitted first")
        X = check_array(features, name="features", ndim=2)
        if X.shape[1] != self.mean_.shape[0]:
            raise DataError("feature width changed between fit and transform")
        return (X - self.mean_) / self.std_

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        return self.fit(features).transform(features)


def standardize(train: np.ndarray, *others: np.ndarray) -> Tuple[np.ndarray, ...]:
    """Convenience wrapper: fit a :class:`Standardizer` on ``train`` and apply everywhere."""
    scaler = Standardizer().fit(train)
    return tuple([scaler.transform(train)] + [scaler.transform(o) for o in others])


def balanced_subsample(dataset: Dataset, rng=None, max_per_class: Optional[int] = None) -> Dataset:
    """Return a class-balanced subset of ``dataset``.

    Every class is down-sampled to the size of the smallest class (or
    ``max_per_class`` if smaller).  Row order is shuffled.
    """
    rng = as_rng(rng)
    counts = dataset.class_counts()
    present = np.nonzero(counts)[0]
    if present.size < 2:
        raise DataError("balanced_subsample requires at least two classes present")
    target = int(counts[present].min())
    if max_per_class is not None:
        if max_per_class <= 0:
            raise DataError("max_per_class must be positive")
        target = min(target, int(max_per_class))
    chosen: List[np.ndarray] = []
    for cls in present:
        idx = np.nonzero(dataset.labels == cls)[0]
        picked = rng.choice(idx, size=target, replace=False)
        chosen.append(picked)
    indices = rng.permutation(np.concatenate(chosen))
    subset = dataset.subset(indices, name=f"{dataset.name}-balanced")
    subset.metadata["balanced"] = True
    subset.metadata["per_class"] = target
    return subset
