"""A small named-dataset registry, mirroring StreamBrain's built-in loaders.

StreamBrain ships data-loaders for MNIST, STL-10, CIFAR-10/100 and HIGGS and
lets users request them by name.  The registry here provides the same
by-name access for the loaders available in this reproduction, and allows
applications to register their own factories (e.g. a private detector
simulation) without modifying the library.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.datasets.base import Dataset
from repro.exceptions import ConfigurationError

__all__ = ["register_dataset", "get_dataset", "list_datasets", "unregister_dataset"]

DatasetFactory = Callable[..., Dataset]

_REGISTRY: Dict[str, DatasetFactory] = {}


def register_dataset(name: str, factory: DatasetFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` (case-insensitive)."""
    if not isinstance(name, str) or not name:
        raise ConfigurationError("dataset name must be a non-empty string")
    if not callable(factory):
        raise ConfigurationError("dataset factory must be callable")
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"dataset '{name}' is already registered")
    _REGISTRY[key] = factory


def unregister_dataset(name: str) -> None:
    """Remove a registration; unknown names are ignored."""
    _REGISTRY.pop(name.lower(), None)


def get_dataset(name: str, **kwargs) -> Dataset:
    """Instantiate the dataset registered as ``name`` with ``kwargs``."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown dataset '{name}'; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def list_datasets() -> List[str]:
    """Names of all registered datasets."""
    return sorted(_REGISTRY)


def _register_builtin() -> None:
    # Imported lazily to avoid a circular import at package load time.
    from repro.datasets.higgs import load_higgs
    from repro.datasets.mnist import load_digits

    if "higgs" not in _REGISTRY:
        register_dataset("higgs", load_higgs)
    if "digits" not in _REGISTRY:
        register_dataset("digits", load_digits)
    if "mnist" not in _REGISTRY:
        register_dataset("mnist", load_digits)


_register_builtin()
