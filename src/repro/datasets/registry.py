"""Named dataset *and scenario* registries.

The dataset half mirrors StreamBrain's built-in loaders: request MNIST or
HIGGS by name, or register a private factory without modifying the library.

The scenario half is what ``repro run`` consumes (Ludwig's
``datasets/configs/*.yaml`` + per-dataset default model configs, applied to
this stack): a :class:`ScenarioSpec` bundles a seeded synthetic generator, a
*declarative* split (:class:`SplitSpec`) and a per-scenario
:meth:`~ScenarioSpec.default_config` overlay that is merged *under* the
user's config file — so ``repro run --scenario imbalance`` works with zero
config file, and a file only needs to state its deviations.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping

from repro.datasets.base import Dataset
from repro.exceptions import ConfigError, ConfigurationError

__all__ = [
    "register_dataset",
    "get_dataset",
    "list_datasets",
    "unregister_dataset",
    "SplitSpec",
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "unregister_scenario",
    "scenario_catalog",
]

DatasetFactory = Callable[..., Dataset]

_REGISTRY: Dict[str, DatasetFactory] = {}


def register_dataset(name: str, factory: DatasetFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``name`` (case-insensitive)."""
    if not isinstance(name, str) or not name:
        raise ConfigurationError("dataset name must be a non-empty string")
    if not callable(factory):
        raise ConfigurationError("dataset factory must be callable")
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"dataset '{name}' is already registered")
    _REGISTRY[key] = factory


def unregister_dataset(name: str) -> None:
    """Remove a registration; unknown names are ignored."""
    _REGISTRY.pop(name.lower(), None)


def get_dataset(name: str, **kwargs) -> Dataset:
    """Instantiate the dataset registered as ``name`` with ``kwargs``."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown dataset '{name}'; available: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[key](**kwargs)


def list_datasets() -> List[str]:
    """Names of all registered datasets."""
    return sorted(_REGISTRY)


# ------------------------------------------------------------- scenarios
@dataclass(frozen=True)
class SplitSpec:
    """Declarative train/test split policy for a scenario.

    ``kind="stratified"`` shuffles and stratifies by label (optionally after
    a balanced subsample); ``kind="sequential"`` trains on the first events
    and tests on the last — the right evaluation when event *order* carries
    meaning (covariate drift).
    """

    kind: str = "stratified"
    balanced: bool = True

    def __post_init__(self) -> None:
        if self.kind not in ("stratified", "sequential"):
            raise ConfigurationError(
                f"split kind must be 'stratified' or 'sequential', got {self.kind!r}"
            )


@dataclass(frozen=True)
class ScenarioSpec:
    """One named data regime: generator + split + default-config overlay."""

    name: str
    description: str
    generate: Callable[..., Dataset]
    split: SplitSpec = field(default_factory=SplitSpec)
    #: Config overlay merged *under* the user file (and over the built-in
    #: schema defaults) — the scenario's recommended model/training setup.
    defaults: Mapping[str, Any] = field(default_factory=dict)

    def default_config(self) -> Dict[str, Any]:
        """A deep copy of the scenario's default-config overlay."""
        return copy.deepcopy(dict(self.defaults))

    def prepare(self, section, seed: int):
        """Generate + split + encode.

        See :func:`~repro.datasets.scenarios.prepare_scenario_data`.
        """
        from repro.datasets.scenarios import prepare_scenario_data

        return prepare_scenario_data(self, section, seed)


_SCENARIOS: Dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, overwrite: bool = False) -> None:
    """Add a scenario to the registry (case-insensitive by name)."""
    if not isinstance(spec, ScenarioSpec):
        raise ConfigurationError("register_scenario expects a ScenarioSpec")
    key = spec.name.lower()
    if key in _SCENARIOS and not overwrite:
        raise ConfigurationError(f"scenario '{spec.name}' is already registered")
    _SCENARIOS[key] = spec


def unregister_scenario(name: str) -> None:
    """Remove a scenario registration; unknown names are ignored."""
    _SCENARIOS.pop(name.lower(), None)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario, raising a pathed :class:`ConfigError` on misses."""
    if not isinstance(name, str) or not name:
        raise ConfigError("dataset.scenario", "scenario name must be a non-empty string")
    key = name.lower()
    if key not in _SCENARIOS:
        raise ConfigError(
            "dataset.scenario",
            f"unknown scenario {name!r}; available: {', '.join(sorted(_SCENARIOS))}",
        )
    return _SCENARIOS[key]


def list_scenarios() -> List[str]:
    """Names of all registered scenarios."""
    return sorted(_SCENARIOS)


def scenario_catalog() -> List[Dict[str, object]]:
    """Human-readable catalog used by ``repro run --list-scenarios`` and docs."""
    out = []
    for name in list_scenarios():
        spec = _SCENARIOS[name]
        out.append(
            {
                "name": spec.name,
                "description": spec.description,
                "split": spec.split.kind
                + (
                    " (balanced)"
                    if spec.split.kind == "stratified" and spec.split.balanced
                    else ""
                ),
                "defaults": spec.default_config(),
            }
        )
    return out


def _register_builtin() -> None:
    # Imported lazily to avoid a circular import at package load time.
    from repro.datasets.higgs import load_higgs
    from repro.datasets.mnist import load_digits

    if "higgs" not in _REGISTRY:
        register_dataset("higgs", load_higgs)
    if "digits" not in _REGISTRY:
        register_dataset("digits", load_digits)
    if "mnist" not in _REGISTRY:
        register_dataset("mnist", load_digits)


def _register_builtin_scenarios() -> None:
    from repro.datasets import scenarios as gen

    builtin = [
        ScenarioSpec(
            name="higgs",
            description=(
                "The paper's balanced synthetic HIGGS benchmark: 28 kinematic "
                "features, 50/50 signal/background, stratified balanced split."
            ),
            generate=gen.generate_higgs,
        ),
        ScenarioSpec(
            name="imbalance",
            description=(
                "Rare-signal HIGGS regime (10% positives by default).  The split "
                "keeps the class imbalance instead of rebalancing, and the head "
                "gets extra supervised epochs to cope."
            ),
            generate=gen.generate_higgs,
            split=SplitSpec(kind="stratified", balanced=False),
            defaults={
                "dataset": {"params": {"signal_fraction": 0.1}},
                "training": {"classifier_epochs": 12},
            },
        ),
        ScenarioSpec(
            name="label-noise",
            description=(
                "HIGGS with symmetric label flips (15% by default) — stresses the "
                "probabilistic head's robustness to annotation noise."
            ),
            generate=gen.generate_label_noise,
            defaults={
                "dataset": {"params": {"label_noise": 0.15}},
                "model": {"taupdt": 0.01},
            },
        ),
        ScenarioSpec(
            name="covariate-drift",
            description=(
                "Feature distributions drift over the event index; the sequential "
                "split trains on early (undrifted) events and tests on late ones."
            ),
            generate=gen.generate_covariate_drift,
            split=SplitSpec(kind="sequential"),
            defaults={
                "dataset": {"params": {"drift_strength": 0.75}},
            },
        ),
        ScenarioSpec(
            name="wide-sparse",
            description=(
                "Wide feature matrix (96 columns, 12 informative) — the low-density "
                "receptive-field regime the block-sparse gather-GEMM plan targets."
            ),
            generate=gen.generate_wide_sparse,
            defaults={
                "model": {"density": 0.2, "n_minicolumns": 100},
                "training": {"sparse": "on"},
            },
        ),
        ScenarioSpec(
            name="noisy-detector",
            description=(
                "HIGGS under degraded detector resolution and heavy pileup — "
                "heavily overlapping classes test calibration under hard signal."
            ),
            generate=gen.generate_higgs,
            defaults={
                "dataset": {
                    "params": {"jet_energy_resolution": 0.35, "pileup_jet_fraction": 0.4}
                },
            },
        ),
    ]
    for spec in builtin:
        if spec.name.lower() not in _SCENARIOS:
            register_scenario(spec)


_register_builtin()
_register_builtin_scenarios()
