"""Dataset containers shared by loaders, preprocessing and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import check_array, check_labels

__all__ = ["Dataset", "DatasetSplits"]


@dataclass
class Dataset:
    """A tabular (or flattened-image) dataset with integer class labels.

    Attributes
    ----------
    features:
        ``(n_samples, n_features)`` float matrix.
    labels:
        ``(n_samples,)`` integer class labels.
    feature_names:
        Optional human-readable column names.
    name:
        Dataset identifier used in logs and reports.
    metadata:
        Free-form provenance information (generator parameters, file path...).
    """

    features: np.ndarray
    labels: np.ndarray
    feature_names: Optional[List[str]] = None
    name: str = "dataset"
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.features = check_array(self.features, name="features", ndim=2)
        self.labels = check_labels(self.labels, name="labels")
        if self.features.shape[0] != self.labels.shape[0]:
            raise DataError(
                f"features ({self.features.shape[0]} rows) and labels "
                f"({self.labels.shape[0]}) are misaligned"
            )
        if self.feature_names is not None:
            self.feature_names = [str(n) for n in self.feature_names]
            if len(self.feature_names) != self.features.shape[1]:
                raise DataError(
                    f"{len(self.feature_names)} feature names for "
                    f"{self.features.shape[1]} columns"
                )

    # ------------------------------------------------------------------ API
    @property
    def n_samples(self) -> int:
        return int(self.features.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.features.shape[1])

    @property
    def n_classes(self) -> int:
        return int(self.labels.max()) + 1 if self.labels.size else 0

    def class_counts(self) -> np.ndarray:
        """Number of samples per class label."""
        return np.bincount(self.labels, minlength=self.n_classes)

    def subset(self, indices: Sequence[int], name: Optional[str] = None) -> "Dataset":
        """Return a new dataset restricted to ``indices`` (copying the rows)."""
        idx = np.asarray(indices, dtype=np.int64)
        if idx.ndim != 1:
            raise DataError("indices must be one-dimensional")
        if idx.size and (idx.min() < 0 or idx.max() >= self.n_samples):
            raise DataError("indices out of range")
        return Dataset(
            features=self.features[idx].copy(),
            labels=self.labels[idx].copy(),
            feature_names=list(self.feature_names) if self.feature_names else None,
            name=name or self.name,
            metadata=dict(self.metadata, parent=self.name, subset_size=int(idx.size)),
        )

    def shuffled(self, rng: np.random.Generator, name: Optional[str] = None) -> "Dataset":
        """Return a row-shuffled copy."""
        order = rng.permutation(self.n_samples)
        return self.subset(order, name=name or self.name)

    def head(self, n: int) -> "Dataset":
        """First ``n`` rows (useful for smoke tests and benchmarks)."""
        n = min(int(n), self.n_samples)
        return self.subset(np.arange(n))

    def describe(self) -> Dict[str, object]:
        """Summary statistics used by the CLI and reports."""
        return {
            "name": self.name,
            "n_samples": self.n_samples,
            "n_features": self.n_features,
            "n_classes": self.n_classes,
            "class_counts": self.class_counts().tolist(),
            "feature_mean": self.features.mean(axis=0).round(4).tolist(),
            "feature_std": self.features.std(axis=0).round(4).tolist(),
        }


@dataclass
class DatasetSplits:
    """Train / validation / test triple produced by the split helpers."""

    train: Dataset
    validation: Optional[Dataset]
    test: Dataset

    def __post_init__(self) -> None:
        widths = {self.train.n_features, self.test.n_features}
        if self.validation is not None:
            widths.add(self.validation.n_features)
        if len(widths) != 1:
            raise DataError("all splits must share the same number of features")

    @property
    def sizes(self) -> Tuple[int, int, int]:
        val = self.validation.n_samples if self.validation is not None else 0
        return self.train.n_samples, val, self.test.n_samples

    def describe(self) -> Dict[str, object]:
        return {
            "train": self.train.describe(),
            "validation": self.validation.describe() if self.validation else None,
            "test": self.test.describe(),
        }
