"""Streaming CSV reading/writing for large numeric datasets.

The real HIGGS file is a 2.8 GB gzipped CSV with 11 million rows; loading it
with ``numpy.loadtxt`` would require reading everything.  The reader here
streams the file line-by-line (transparently handling gzip), stops after
``max_rows`` and parses in chunks to bound memory.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.exceptions import DataError

__all__ = ["open_maybe_gzip", "iter_csv_rows", "read_numeric_csv", "write_numeric_csv"]


def open_maybe_gzip(path: Union[str, Path], mode: str = "rt"):
    """Open a text file, transparently decompressing ``.gz`` paths."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode, encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def iter_csv_rows(
    path: Union[str, Path],
    skip_header: bool = False,
    delimiter: str = ",",
) -> Iterator[List[str]]:
    """Yield raw CSV rows as lists of strings."""
    with open_maybe_gzip(path) as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        for i, row in enumerate(reader):
            if skip_header and i == 0:
                continue
            if not row:
                continue
            yield row


def read_numeric_csv(
    path: Union[str, Path],
    max_rows: Optional[int] = None,
    skip_header: bool = False,
    delimiter: str = ",",
    chunk_size: int = 65536,
) -> np.ndarray:
    """Read a purely numeric CSV into a float64 matrix, streaming in chunks.

    Parameters
    ----------
    max_rows:
        Stop after this many data rows (``None`` reads everything).
    chunk_size:
        Rows per intermediate buffer; bounds peak Python-object overhead.
    """
    if max_rows is not None and max_rows <= 0:
        raise DataError("max_rows must be positive when given")
    chunks: List[np.ndarray] = []
    buffer: List[List[float]] = []
    width: Optional[int] = None
    count = 0
    for row in iter_csv_rows(path, skip_header=skip_header, delimiter=delimiter):
        try:
            values = [float(v) for v in row]
        except ValueError as exc:
            raise DataError(f"non-numeric value in {path} at data row {count}: {exc}") from exc
        if width is None:
            width = len(values)
        elif len(values) != width:
            raise DataError(
                f"inconsistent column count in {path}: row {count} has "
                f"{len(values)}, expected {width}"
            )
        buffer.append(values)
        count += 1
        if len(buffer) >= chunk_size:
            chunks.append(np.asarray(buffer, dtype=np.float64))
            buffer = []
        if max_rows is not None and count >= max_rows:
            break
    if buffer:
        chunks.append(np.asarray(buffer, dtype=np.float64))
    if not chunks:
        raise DataError(f"no data rows found in {path}")
    return np.concatenate(chunks, axis=0)


def write_numeric_csv(
    path: Union[str, Path],
    matrix: np.ndarray,
    header: Optional[Sequence[str]] = None,
    fmt: str = "%.6g",
    delimiter: str = ",",
) -> Path:
    """Write a numeric matrix as CSV (gzip if the path ends in ``.gz``)."""
    path = Path(path)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise DataError("matrix must be two-dimensional")
    if header is not None and len(header) != matrix.shape[1]:
        raise DataError("header length does not match the number of columns")
    path.parent.mkdir(parents=True, exist_ok=True)
    buf = io.StringIO()
    if header is not None:
        buf.write(delimiter.join(str(h) for h in header) + "\n")
    for row in matrix:
        buf.write(delimiter.join(fmt % v for v in row) + "\n")
    payload = buf.getvalue()
    if path.suffix == ".gz":
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write(payload)
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
    return path
