"""Train/test splitting and cross-validation fold generation."""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_rng

__all__ = ["train_test_split", "stratified_kfold"]


def train_test_split(
    dataset: Dataset,
    test_fraction: float,
    rng=None,
    stratify: bool = True,
) -> Tuple[Dataset, Dataset]:
    """Split a dataset into train/test parts.

    Parameters
    ----------
    test_fraction:
        Fraction of samples assigned to the test part (0 < f < 1).
    stratify:
        Preserve per-class proportions (recommended; the paper's balanced
        subset stays balanced across splits this way).
    """
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_rng(rng)
    n = dataset.n_samples
    if stratify:
        test_idx: List[np.ndarray] = []
        train_idx: List[np.ndarray] = []
        for cls in range(dataset.n_classes):
            cls_idx = np.nonzero(dataset.labels == cls)[0]
            if cls_idx.size == 0:
                continue
            cls_idx = rng.permutation(cls_idx)
            n_test = int(round(cls_idx.size * test_fraction))
            if cls_idx.size > 1:
                n_test = min(max(n_test, 1), cls_idx.size - 1)
            else:
                n_test = 0
            test_idx.append(cls_idx[:n_test])
            train_idx.append(cls_idx[n_test:])
        test_indices = (
            rng.permutation(np.concatenate(test_idx)) if test_idx else np.empty(0, np.int64)
        )
        train_indices = rng.permutation(np.concatenate(train_idx))
    else:
        order = rng.permutation(n)
        n_test = int(round(n * test_fraction))
        n_test = min(max(n_test, 1), n - 1)
        test_indices = order[:n_test]
        train_indices = order[n_test:]
    if train_indices.size == 0 or test_indices.size == 0:
        raise DataError("split produced an empty partition; adjust test_fraction")
    return (
        dataset.subset(train_indices, name=f"{dataset.name}-train"),
        dataset.subset(test_indices, name=f"{dataset.name}-test"),
    )


def stratified_kfold(
    dataset: Dataset, n_folds: int, rng=None
) -> Iterator[Tuple[Dataset, Dataset]]:
    """Yield ``(train, validation)`` dataset pairs for stratified K-fold CV."""
    if n_folds < 2:
        raise DataError("n_folds must be at least 2")
    rng = as_rng(rng)
    fold_assignment = np.empty(dataset.n_samples, dtype=np.int64)
    for cls in range(dataset.n_classes):
        cls_idx = np.nonzero(dataset.labels == cls)[0]
        if cls_idx.size and cls_idx.size < n_folds:
            raise DataError(
                f"class {cls} has only {cls_idx.size} samples for {n_folds} folds"
            )
        cls_idx = rng.permutation(cls_idx)
        fold_assignment[cls_idx] = np.arange(cls_idx.size) % n_folds
    for fold in range(n_folds):
        val_mask = fold_assignment == fold
        train_idx = np.nonzero(~val_mask)[0]
        val_idx = np.nonzero(val_mask)[0]
        yield (
            dataset.subset(train_idx, name=f"{dataset.name}-fold{fold}-train"),
            dataset.subset(val_idx, name=f"{dataset.name}-fold{fold}-val"),
        )
