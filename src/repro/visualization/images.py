"""Portable image output without external imaging libraries.

PGM (portable greymap) files open in essentially every image viewer and in
ParaView; ASCII rendering gives a quick terminal look at masks and receptive
fields (handy over SSH on the HPC systems the paper targets).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import VisualizationError

__all__ = ["normalize_to_unit", "array_to_pgm", "ascii_render"]

_ASCII_RAMP = " .:-=+*#%@"


def normalize_to_unit(values: np.ndarray) -> np.ndarray:
    """Scale an array linearly into [0, 1] (constant arrays map to 0)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise VisualizationError("cannot normalise an empty array")
    lo = float(arr.min())
    hi = float(arr.max())
    if not np.isfinite(lo) or not np.isfinite(hi):
        raise VisualizationError("array contains non-finite values")
    if hi - lo < 1e-300:
        return np.zeros_like(arr)
    return (arr - lo) / (hi - lo)


def array_to_pgm(values: np.ndarray, path: Union[str, Path], max_value: int = 255) -> Path:
    """Write a 2-D array as a binary PGM image (auto-normalised)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise VisualizationError(f"PGM export needs a 2-D array, got shape {arr.shape}")
    if not 1 <= max_value <= 255:
        raise VisualizationError("max_value must be in [1, 255]")
    path = Path(path)
    if path.suffix.lower() != ".pgm":
        path = path.with_suffix(".pgm")
    path.parent.mkdir(parents=True, exist_ok=True)
    scaled = np.round(normalize_to_unit(arr) * max_value).astype(np.uint8)
    header = f"P5\n{arr.shape[1]} {arr.shape[0]}\n{max_value}\n".encode("ascii")
    try:
        with open(path, "wb") as handle:
            handle.write(header)
            handle.write(scaled.tobytes())
    except OSError as exc:
        raise VisualizationError(f"failed to write {path}: {exc}") from exc
    return path


def ascii_render(values: np.ndarray, width: int = 60) -> str:
    """Render a 2-D array as an ASCII-art string (downsampled to ``width``)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise VisualizationError(f"ascii_render needs a 2-D array, got shape {arr.shape}")
    if width < 2:
        raise VisualizationError("width must be >= 2")
    rows, cols = arr.shape
    if cols > width:
        # Nearest-neighbour downsample; keep the aspect ratio roughly 2:1
        # because terminal cells are taller than they are wide.
        col_idx = np.linspace(0, cols - 1, width).astype(int)
        row_count = max(2, int(rows * width / cols / 2))
        row_idx = np.linspace(0, rows - 1, row_count).astype(int)
        arr = arr[np.ix_(row_idx, col_idx)]
    unit = normalize_to_unit(arr)
    indices = np.minimum((unit * len(_ASCII_RAMP)).astype(int), len(_ASCII_RAMP) - 1)
    return "\n".join("".join(_ASCII_RAMP[i] for i in row) for row in indices)
