"""Minimal VTK XML ImageData (``.vti``) writer.

Produces ASCII-encoded ``.vti`` files that ParaView (and ``vtkXMLImageDataReader``)
can open directly.  Only what the in-situ receptive-field pipeline needs is
implemented: point data on a regular 2-D/3-D grid with one or more named
float arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Tuple, Union
from xml.etree import ElementTree

import numpy as np

from repro.exceptions import VisualizationError

__all__ = ["ImageDataSpec", "write_vti", "read_vti_arrays"]


@dataclass(frozen=True)
class ImageDataSpec:
    """Grid geometry of an ImageData file."""

    dimensions: Tuple[int, int, int]
    origin: Tuple[float, float, float] = (0.0, 0.0, 0.0)
    spacing: Tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        if len(self.dimensions) != 3 or any(int(d) <= 0 for d in self.dimensions):
            raise VisualizationError("dimensions must be three positive integers")
        if len(self.origin) != 3 or len(self.spacing) != 3:
            raise VisualizationError("origin and spacing must have three components")
        if any(s <= 0 for s in self.spacing):
            raise VisualizationError("spacing components must be positive")

    @property
    def n_points(self) -> int:
        return int(np.prod([int(d) for d in self.dimensions]))

    @property
    def whole_extent(self) -> str:
        nx, ny, nz = (int(d) for d in self.dimensions)
        return f"0 {nx - 1} 0 {ny - 1} 0 {nz - 1}"


def _normalise_field(name: str, values: np.ndarray, spec: ImageDataSpec) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size != spec.n_points:
        raise VisualizationError(
            f"field '{name}' has {arr.size} values but the grid has {spec.n_points} points"
        )
    if not np.all(np.isfinite(arr)):
        raise VisualizationError(f"field '{name}' contains NaN or infinite values")
    # VTK expects x-fastest ordering; we accept either a flat array (assumed
    # already ordered) or an array shaped like the grid (z, y, x) and flatten.
    return arr.reshape(-1)


def write_vti(
    path: Union[str, Path],
    fields: Dict[str, np.ndarray],
    spec: ImageDataSpec,
) -> Path:
    """Write named point-data arrays on a regular grid as an ASCII ``.vti`` file."""
    if not fields:
        raise VisualizationError("at least one field is required")
    path = Path(path)
    if path.suffix != ".vti":
        path = path.with_suffix(".vti")
    path.parent.mkdir(parents=True, exist_ok=True)

    lines = []
    lines.append('<?xml version="1.0"?>')
    lines.append('<VTKFile type="ImageData" version="0.1" byte_order="LittleEndian">')
    origin = " ".join(f"{v:g}" for v in spec.origin)
    spacing = " ".join(f"{v:g}" for v in spec.spacing)
    lines.append(
        f'  <ImageData WholeExtent="{spec.whole_extent}" Origin="{origin}" Spacing="{spacing}">'
    )
    lines.append(f'    <Piece Extent="{spec.whole_extent}">')
    first_name = next(iter(fields))
    lines.append(f'      <PointData Scalars="{first_name}">')
    for name, values in fields.items():
        flat = _normalise_field(name, values, spec)
        payload = " ".join(f"{v:.9g}" for v in flat)
        lines.append(
            f'        <DataArray type="Float64" Name="{name}" format="ascii" '
            f'NumberOfComponents="1">'
        )
        lines.append(f"          {payload}")
        lines.append("        </DataArray>")
    lines.append("      </PointData>")
    lines.append("      <CellData/>")
    lines.append("    </Piece>")
    lines.append("  </ImageData>")
    lines.append("</VTKFile>")
    try:
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    except OSError as exc:
        raise VisualizationError(f"failed to write {path}: {exc}") from exc
    return path


def read_vti_arrays(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Parse the point-data arrays back from a ``.vti`` written by :func:`write_vti`.

    Primarily used by tests and notebooks; not a general VTK reader.
    """
    path = Path(path)
    try:
        tree = ElementTree.parse(path)
    except (OSError, ElementTree.ParseError) as exc:
        raise VisualizationError(f"failed to read {path}: {exc}") from exc
    arrays: Dict[str, np.ndarray] = {}
    for data_array in tree.getroot().iter("DataArray"):
        name = data_array.get("Name", "unnamed")
        text = (data_array.text or "").split()
        arrays[name] = np.asarray([float(v) for v in text], dtype=np.float64)
    if not arrays:
        raise VisualizationError(f"no DataArray elements found in {path}")
    return arrays
