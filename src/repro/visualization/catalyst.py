"""Catalyst-style in-situ co-processing of BCPNN training.

The paper's new StreamBrain feature is a ParaView Catalyst adaptor that
"triggers co-processing at end of each epoch and the Catalyst pipeline
writes the receptive fields as VTI files" (Section III-B).  The classes here
reproduce that architecture without ParaView:

* :class:`CoProcessor` — owns a list of pipeline stages; ``coprocess`` is
  called with a data description (epoch, fields) and runs every stage whose
  trigger matches, exactly like ``vtkCPProcessor``.
* :class:`CatalystAdaptor` — the simulation-side adaptor.  It is also a
  :class:`repro.core.training.TrainingCallback`, so it plugs straight into
  ``Network.fit(callbacks=[adaptor])``: on every epoch end it extracts the
  hidden layers' receptive-field masks and hands them to the co-processor,
  which writes ``.vti`` files (readable by an actual ParaView client) and
  optionally ``.pgm`` snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.core.training import TrainingCallback
from repro.exceptions import VisualizationError
from repro.visualization.fields import mask_to_square_image, masks_to_image_grid
from repro.visualization.images import array_to_pgm
from repro.visualization.vti import ImageDataSpec, write_vti

__all__ = ["DataDescription", "CoProcessor", "CatalystAdaptor"]


@dataclass
class DataDescription:
    """What the simulation hands to the co-processor at each trigger point."""

    step: int
    time: float
    fields: Dict[str, np.ndarray]
    metadata: Dict[str, object] = field(default_factory=dict)


PipelineStage = Callable[[DataDescription], Optional[Path]]


class CoProcessor:
    """Runs registered pipeline stages whenever the trigger frequency fires."""

    def __init__(self, frequency: int = 1) -> None:
        if frequency < 1:
            raise VisualizationError("frequency must be >= 1")
        self.frequency = int(frequency)
        self.pipelines: List[PipelineStage] = []
        self.outputs: List[Path] = []
        self.invocations = 0

    def add_pipeline(self, stage: PipelineStage) -> None:
        if not callable(stage):
            raise VisualizationError("pipeline stage must be callable")
        self.pipelines.append(stage)

    def request_data_description(self, step: int) -> bool:
        """Whether co-processing should run for this step (Catalyst-style poll)."""
        return step % self.frequency == 0

    def coprocess(self, description: DataDescription) -> List[Path]:
        """Run all pipelines; returns the files written this invocation."""
        if not self.request_data_description(description.step):
            return []
        written: List[Path] = []
        for stage in self.pipelines:
            result = stage(description)
            if result is not None:
                written.append(Path(result))
        self.outputs.extend(written)
        self.invocations += 1
        return written


class CatalystAdaptor(TrainingCallback):
    """Training callback that co-processes receptive fields once per epoch.

    Parameters
    ----------
    output_dir:
        Directory for the generated ``.vti`` (and optional ``.pgm``) files.
    image_shape:
        Per-HCU layout of the mask image.  For MNIST-style inputs pass the
        pixel grid (e.g. ``(28, 28)`` when each pixel is one hypercolumn);
        for the 28-feature Higgs input the default near-square layout is a
        7x4 panel as in Fig. 2.
    frequency:
        Co-process every ``frequency`` epochs.
    write_pgm:
        Additionally write a PGM montage of all HCU masks per invocation.
    phase:
        Which training phase to observe (default: the unsupervised hidden
        phase, matching the paper).
    """

    def __init__(
        self,
        output_dir: Union[str, Path],
        image_shape: Optional[Tuple[int, int]] = None,
        frequency: int = 1,
        write_pgm: bool = False,
        phase: str = "hidden",
    ) -> None:
        self.output_dir = Path(output_dir)
        self.output_dir.mkdir(parents=True, exist_ok=True)
        self.image_shape = image_shape
        self.write_pgm = bool(write_pgm)
        self.phase = str(phase)
        self.coprocessor = CoProcessor(frequency=frequency)
        self.coprocessor.add_pipeline(self._write_fields_pipeline)
        if self.write_pgm:
            self.coprocessor.add_pipeline(self._write_pgm_pipeline)
        self.snapshots: List[Dict[str, object]] = []

    # ------------------------------------------------------------ callbacks
    def on_epoch_end(self, context: Dict[str, object]) -> None:
        if context.get("phase") != self.phase:
            return
        layer = context["layer"]
        masks = getattr(layer, "receptive_field_masks", None)
        if masks is None:
            return
        mask_matrix = layer.receptive_field_masks()
        description = DataDescription(
            step=int(context["epoch"]),
            time=float(context["epoch"]),
            fields={"mask": mask_matrix},
            metadata={
                "layer_name": context.get("layer_name", "hidden"),
                "density": getattr(layer.hyperparams, "density", float("nan")),
                "metrics": dict(context.get("metrics", {})),
            },
        )
        written = self.coprocessor.coprocess(description)
        self.snapshots.append(
            {
                "epoch": int(context["epoch"]),
                "layer": context.get("layer_name", "hidden"),
                "files": [str(p) for p in written],
                "mask": mask_matrix.copy(),
            }
        )

    # ------------------------------------------------------------ pipelines
    def _vti_spec_for(self, mask_matrix: np.ndarray) -> Tuple[ImageDataSpec, np.ndarray]:
        """Stack per-HCU mask images into a (z = HCU index) image volume."""
        images = [
            mask_to_square_image(mask_matrix[h], self.image_shape)
            for h in range(mask_matrix.shape[0])
        ]
        volume = np.stack(images, axis=0)  # (H, rows, cols)
        n_hcu, rows, cols = volume.shape
        spec = ImageDataSpec(dimensions=(cols, rows, n_hcu))
        # VTK point ordering is x-fastest, then y, then z: (z, y, x) ravel.
        return spec, volume.reshape(-1)

    def _write_fields_pipeline(self, description: DataDescription) -> Path:
        mask_matrix = np.asarray(description.fields["mask"], dtype=np.float64)
        spec, flat = self._vti_spec_for(mask_matrix)
        layer_name = str(description.metadata.get("layer_name", "hidden"))
        path = self.output_dir / f"receptive_fields_{layer_name}_epoch{description.step:04d}.vti"
        return write_vti(path, {"receptive_field": flat}, spec)

    def _write_pgm_pipeline(self, description: DataDescription) -> Path:
        mask_matrix = np.asarray(description.fields["mask"], dtype=np.float64)
        panel = masks_to_image_grid(mask_matrix, image_shape=self.image_shape)
        layer_name = str(description.metadata.get("layer_name", "hidden"))
        path = self.output_dir / f"receptive_fields_{layer_name}_epoch{description.step:04d}.pgm"
        return array_to_pgm(panel, path)

    # ------------------------------------------------------------ inspection
    @property
    def written_files(self) -> List[Path]:
        return list(self.coprocessor.outputs)

    def mask_evolution(self) -> List[np.ndarray]:
        """The sequence of mask matrices captured across epochs."""
        return [np.asarray(s["mask"]) for s in self.snapshots]
