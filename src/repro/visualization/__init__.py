"""In-situ visualization of BCPNN training.

The paper introduces a StreamBrain visualization module built on ParaView
Catalyst: a co-processing adaptor triggered at the end of every epoch writes
the HCUs' receptive fields as VTI (VTK ImageData) files that a live ParaView
client can inspect while training runs (Section III-B, Fig. 2).

ParaView is not available in this environment, so this package implements
the pipeline itself: a standards-conforming VTK XML ImageData writer
(:mod:`~repro.visualization.vti`), a Catalyst-style co-processor and
training callback (:mod:`~repro.visualization.catalyst`), receptive-field
rendering helpers (:mod:`~repro.visualization.fields`), portable PGM/ASCII
image output (:mod:`~repro.visualization.images`) and a training-curve
recorder (:mod:`~repro.visualization.history`).  The VTI files produced are
readable by any ParaView installation.
"""

from repro.visualization.vti import write_vti, ImageDataSpec
from repro.visualization.images import array_to_pgm, ascii_render, normalize_to_unit
from repro.visualization.fields import (
    masks_to_image_grid,
    mask_to_square_image,
    receptive_field_summary,
)
from repro.visualization.catalyst import CoProcessor, CatalystAdaptor
from repro.visualization.history import TrainingCurveRecorder

__all__ = [
    "write_vti",
    "ImageDataSpec",
    "array_to_pgm",
    "ascii_render",
    "normalize_to_unit",
    "masks_to_image_grid",
    "mask_to_square_image",
    "receptive_field_summary",
    "CoProcessor",
    "CatalystAdaptor",
    "TrainingCurveRecorder",
]
