"""Receptive-field rendering helpers.

These convert structural-plasticity masks (an ``(H, F)`` matrix of 0/1
connections from each hidden HCU to each input hypercolumn / feature) into
images and summaries:

* for image datasets (MNIST), each HCU's mask reshapes directly onto the
  pixel grid — the Fig. 1 visualisation;
* for tabular datasets (HIGGS, 28 features), masks are laid out on a small
  rectangular grid (e.g. 7x4) so the Fig. 2/5 style panels can be produced.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import VisualizationError

__all__ = ["mask_to_square_image", "masks_to_image_grid", "receptive_field_summary"]


def _grid_shape(n_items: int) -> Tuple[int, int]:
    """Near-square (rows, cols) layout for ``n_items`` cells."""
    cols = int(math.ceil(math.sqrt(n_items)))
    rows = int(math.ceil(n_items / cols))
    return rows, cols


def mask_to_square_image(
    mask_row: np.ndarray, image_shape: Optional[Tuple[int, int]] = None
) -> np.ndarray:
    """Reshape one HCU's mask over F input hypercolumns into a 2-D image.

    If ``image_shape`` is omitted a near-square layout is chosen and padded
    with zeros (padding cells are not connected to anything).
    """
    row = np.asarray(mask_row, dtype=np.float64).reshape(-1)
    if row.size == 0:
        raise VisualizationError("mask row must not be empty")
    if image_shape is None:
        image_shape = _grid_shape(row.size)
    rows, cols = int(image_shape[0]), int(image_shape[1])
    if rows * cols < row.size:
        raise VisualizationError(
            f"image shape {image_shape} too small for {row.size} mask entries"
        )
    padded = np.zeros(rows * cols, dtype=np.float64)
    padded[: row.size] = row
    return padded.reshape(rows, cols)


def masks_to_image_grid(
    masks: np.ndarray,
    image_shape: Optional[Tuple[int, int]] = None,
    padding: int = 1,
) -> np.ndarray:
    """Tile every HCU's mask image into one composite panel.

    Parameters
    ----------
    masks:
        ``(H, F)`` mask matrix (one row per HCU).
    image_shape:
        Per-HCU image shape; near-square when omitted.
    padding:
        Pixels of separation between tiles (rendered as value 0.5 so tile
        boundaries are visible both against active=1 and silent=0 cells).
    """
    masks = np.asarray(masks, dtype=np.float64)
    if masks.ndim != 2:
        raise VisualizationError(f"masks must be 2-D (H, F), got shape {masks.shape}")
    if padding < 0:
        raise VisualizationError("padding must be non-negative")
    images = [mask_to_square_image(masks[h], image_shape) for h in range(masks.shape[0])]
    tile_rows, tile_cols = images[0].shape
    grid_rows, grid_cols = _grid_shape(len(images))
    height = grid_rows * tile_rows + (grid_rows + 1) * padding
    width = grid_cols * tile_cols + (grid_cols + 1) * padding
    panel = np.full((height, width), 0.5, dtype=np.float64)
    for idx, image in enumerate(images):
        r, c = divmod(idx, grid_cols)
        top = padding + r * (tile_rows + padding)
        left = padding + c * (tile_cols + padding)
        panel[top : top + tile_rows, left : left + tile_cols] = image
    return panel


def receptive_field_summary(
    masks: np.ndarray, feature_names: Optional[Sequence[str]] = None
) -> Dict[str, object]:
    """Quantitative summary of the receptive-field structure.

    Returns per-HCU active counts, per-feature usage counts, the coverage
    (fraction of features watched by at least one HCU), the mean pairwise
    Jaccard overlap between HCUs, and the most/least attended features —
    the kind of data-set insight the paper argues structural plasticity
    provides.
    """
    masks = np.asarray(masks, dtype=np.float64)
    if masks.ndim != 2:
        raise VisualizationError("masks must be 2-D (H, F)")
    n_hcu, n_features = masks.shape
    active_per_hcu = masks.sum(axis=1).astype(int)
    usage_per_feature = masks.sum(axis=0).astype(int)
    coverage = float(np.mean(usage_per_feature > 0)) if n_features else 0.0

    overlaps: List[float] = []
    for a in range(n_hcu):
        for b in range(a + 1, n_hcu):
            union = np.sum((masks[a] + masks[b]) > 0)
            inter = np.sum((masks[a] * masks[b]) > 0)
            overlaps.append(float(inter / union) if union > 0 else 0.0)
    mean_overlap = float(np.mean(overlaps)) if overlaps else 0.0

    if feature_names is not None:
        names = list(feature_names)
    else:
        names = [f"feature_{i}" for i in range(n_features)]
    if len(names) != n_features:
        raise VisualizationError("feature_names length does not match the mask width")
    order = np.argsort(-usage_per_feature)
    most = [(names[i], int(usage_per_feature[i])) for i in order[: min(5, n_features)]]
    least = [(names[i], int(usage_per_feature[i])) for i in order[::-1][: min(5, n_features)]]
    return {
        "n_hcus": int(n_hcu),
        "n_features": int(n_features),
        "active_per_hcu": active_per_hcu.tolist(),
        "usage_per_feature": usage_per_feature.tolist(),
        "coverage": coverage,
        "mean_pairwise_jaccard": mean_overlap,
        "most_attended": most,
        "least_attended": least,
    }
