"""Training-curve recording and export.

A lightweight alternative to the per-epoch loss printouts the paper
contrasts with in-situ visualization: records arbitrary named series during
training (as a callback) and exports them to CSV for plotting elsewhere.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.training import TrainingCallback
from repro.exceptions import VisualizationError

__all__ = ["TrainingCurveRecorder"]


class TrainingCurveRecorder(TrainingCallback):
    """Collects per-epoch metrics from the training loop.

    Parameters
    ----------
    phases:
        Which training phases to record (``None`` records everything).
    """

    def __init__(self, phases: Optional[List[str]] = None) -> None:
        self.phases = list(phases) if phases is not None else None
        self.rows: List[Dict[str, object]] = []

    def on_epoch_end(self, context: Dict[str, object]) -> None:
        phase = str(context.get("phase", ""))
        if self.phases is not None and phase not in self.phases:
            return
        row: Dict[str, object] = {
            "phase": phase,
            "layer": context.get("layer_name", ""),
            "epoch": int(context.get("epoch", -1)),
        }
        for key, value in dict(context.get("metrics", {})).items():
            row[key] = float(value)
        self.rows.append(row)

    # --------------------------------------------------------------- access
    def series(self, metric: str, phase: Optional[str] = None) -> List[float]:
        """The trajectory of one metric (rows lacking the metric are skipped)."""
        values = []
        for row in self.rows:
            if phase is not None and row["phase"] != phase:
                continue
            if metric in row:
                values.append(float(row[metric]))
        return values

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write all recorded rows to a CSV file with a unified header."""
        if not self.rows:
            raise VisualizationError("nothing recorded yet")
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        columns: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
        with path.open("w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=columns)
            writer.writeheader()
            for row in self.rows:
                writer.writerow(row)
        return path

    def __len__(self) -> int:
        return len(self.rows)
