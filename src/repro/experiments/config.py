"""Experiment scaling configuration.

The paper trains networks with up to 8 HCUs x 3000 MCUs on an NVIDIA A100
for minutes per run.  This reproduction runs on ordinary CPUs, so every
experiment has two scales:

* ``small`` (default) — sized so the complete benchmark suite finishes in a
  few minutes on a 2-core machine while preserving the sweep *structure*
  (same axes, same comparisons, scaled-down capacities and sample counts).
* ``full``  — the paper's configuration (1-8 HCUs, 30/300/3000 MCUs,
  receptive-field sweep in 5% steps, large event counts).  Select it by
  setting the environment variable ``REPRO_FULL=1``.

EXPERIMENTS.md records which scale produced the reported numbers.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from typing import Optional, Tuple

from repro.core.hyperparams import BCPNNHyperParameters, TrainingSchedule
from repro.exceptions import ConfigurationError
from repro.utils.validation import check_sparse_mode

__all__ = ["ExperimentScale", "HiggsExperimentConfig", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """Sizes of the sweeps / datasets used by the experiment harness."""

    name: str
    n_events: int
    hidden_epochs: int
    classifier_epochs: int
    batch_size: int
    repeats: int
    hcu_values: Tuple[int, ...]
    mcu_values: Tuple[int, ...]
    density_values: Tuple[float, ...]
    baseline_epochs: int
    boosting_rounds: int

    def __post_init__(self) -> None:
        if self.n_events < 100:
            raise ConfigurationError("n_events must be at least 100")
        if self.repeats < 1:
            raise ConfigurationError("repeats must be at least 1")


SMALL_SCALE = ExperimentScale(
    name="small",
    n_events=8000,
    hidden_epochs=4,
    classifier_epochs=8,
    batch_size=128,
    repeats=2,
    hcu_values=(1, 2, 4),
    mcu_values=(10, 50, 150),
    density_values=(0.05, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8, 1.0),
    baseline_epochs=15,
    boosting_rounds=60,
)

FULL_SCALE = ExperimentScale(
    name="full",
    n_events=200000,
    hidden_epochs=10,
    classifier_epochs=20,
    batch_size=256,
    repeats=10,
    hcu_values=(1, 2, 4, 6, 8),
    mcu_values=(30, 300, 3000),
    density_values=tuple(round(0.05 * i, 2) for i in range(0, 21)),
    baseline_epochs=40,
    boosting_rounds=200,
)


def get_scale(name: Optional[str] = None) -> ExperimentScale:
    """Resolve the experiment scale from an explicit name or ``REPRO_FULL``."""
    if name is None:
        full = os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")
        name = "full" if full else "small"
    name = name.lower()
    if name == "small":
        return SMALL_SCALE
    if name == "full":
        return FULL_SCALE
    raise ConfigurationError(f"unknown experiment scale '{name}' (use 'small' or 'full')")


@dataclass(frozen=True)
class HiggsExperimentConfig:
    """Complete configuration of one Higgs training run."""

    n_hypercolumns: int = 1
    n_minicolumns: int = 150
    density: float = 0.3
    head: str = "sgd"  # "sgd" (hybrid, paper's best) or "bcpnn"
    n_bins: int = 10
    n_events: int = 8000
    taupdt: float = 0.02
    hidden_epochs: int = 4
    classifier_epochs: int = 8
    batch_size: int = 128
    backend: str = "numpy"
    seed: int = 0
    #: Overlapped double-buffered hidden-phase training (identical results).
    pipeline: bool = False
    #: Stale-weights tolerance for the per-batch weight refresh (0 = exact).
    weight_refresh_tol: float = 0.0
    #: Block-sparse execution policy for the hidden layer ("auto"/"on"/"off").
    sparse: str = "auto"
    #: Nonblocking-allreduce overlap for comm training ("auto"/"on"/"off").
    comm_overlap: str = "auto"
    #: Sparse-packed allreduce payloads on frozen masks ("auto"/"on"/"off").
    sparse_payload: str = "auto"
    #: Recover from crashed ranks during comm training (process/tcp).
    fault_tolerance: bool = False
    #: Durable checkpoint directory for crash-safe training (None = off).
    checkpoint_dir: Optional[str] = None
    #: Save a checkpoint every N epoch boundaries (1 = every boundary).
    checkpoint_every: int = 1
    #: Keep the newest N checkpoints in the directory (older ones rotate out).
    checkpoint_keep: int = 3
    #: Resume from the latest checkpoint in ``checkpoint_dir``.
    resume: bool = False

    def __post_init__(self) -> None:
        if self.head not in ("sgd", "bcpnn"):
            raise ConfigurationError("head must be 'sgd' or 'bcpnn'")
        if not 0.0 <= self.density <= 1.0:
            raise ConfigurationError("density must be in [0, 1]")
        if self.weight_refresh_tol < 0:
            raise ConfigurationError("weight_refresh_tol must be non-negative")
        if self.checkpoint_every < 1:
            raise ConfigurationError("checkpoint_every must be at least 1")
        if self.checkpoint_keep < 1:
            raise ConfigurationError("checkpoint_keep must be at least 1")
        if self.resume and self.checkpoint_dir is None:
            raise ConfigurationError("resume=True requires checkpoint_dir")
        check_sparse_mode(self.sparse)
        for knob, value in (
            ("comm_overlap", self.comm_overlap),
            ("sparse_payload", self.sparse_payload),
        ):
            if value not in ("auto", "on", "off"):
                raise ConfigurationError(
                    f"{knob} must be 'auto', 'on' or 'off', got {value!r}"
                )

    def replace(self, **overrides) -> "HiggsExperimentConfig":
        return replace(self, **overrides)

    def hyperparams(self) -> BCPNNHyperParameters:
        return BCPNNHyperParameters(taupdt=self.taupdt, density=self.density)

    def schedule(self) -> TrainingSchedule:
        return TrainingSchedule(
            hidden_epochs=self.hidden_epochs,
            classifier_epochs=self.classifier_epochs,
            batch_size=self.batch_size,
            pipeline=self.pipeline,
            weight_refresh_tol=self.weight_refresh_tol,
            sparse=self.sparse,
            comm_overlap=self.comm_overlap,
            sparse_payload=self.sparse_payload,
            fault_tolerance=self.fault_tolerance,
        )

    @classmethod
    def from_schema(cls, config) -> "HiggsExperimentConfig":
        """Build from a :class:`repro.config.schema.ExperimentConfig`.

        Duck-typed on the section attributes rather than importing
        ``repro.config`` (which imports this module), mapping every knob the
        declarative schema shares with this runtime config.  The config path
        of ``repro run`` and the flag path of ``repro train`` meet here, so
        equivalent inputs produce identical training runs.
        """
        model, dataset, training = config.model, config.dataset, config.training
        return cls(
            n_hypercolumns=model.n_hypercolumns,
            n_minicolumns=model.n_minicolumns,
            density=model.density,
            head=model.head,
            n_bins=dataset.n_bins,
            n_events=dataset.n_events,
            taupdt=model.taupdt,
            hidden_epochs=training.hidden_epochs,
            classifier_epochs=training.classifier_epochs,
            batch_size=training.batch_size,
            backend=training.backend,
            seed=config.seed,
            pipeline=training.pipeline,
            weight_refresh_tol=training.weight_refresh_tol,
            sparse=training.sparse,
            comm_overlap=training.comm_overlap,
            sparse_payload=training.sparse_payload,
            fault_tolerance=getattr(training, "fault_tolerance", False),
            checkpoint_dir=getattr(training, "checkpoint_dir", None),
            checkpoint_every=getattr(training, "checkpoint_every", 1),
            checkpoint_keep=getattr(training, "checkpoint_keep", 3),
            resume=getattr(training, "resume", False),
        )

    @classmethod
    def from_scale(cls, scale: ExperimentScale, **overrides) -> "HiggsExperimentConfig":
        base = cls(
            n_events=scale.n_events,
            hidden_epochs=scale.hidden_epochs,
            classifier_epochs=scale.classifier_epochs,
            batch_size=scale.batch_size,
            n_minicolumns=max(scale.mcu_values),
        )
        return base.replace(**overrides) if overrides else base
