"""The end-to-end Higgs pipeline shared by every experiment.

Steps (Section V of the paper): load the dataset, extract a balanced subset,
compute 10-quantiles per feature, one-hot encode, train the BCPNN hidden
layer unsupervised, train a classification head, evaluate accuracy/AUC and
training time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core import (
    BCPNNClassifier,
    InputSpec,
    Network,
    SGDClassifier,
    StructuralPlasticityLayer,
)
from repro.core.training import TrainingCallback
from repro.datasets import DatasetSplits, QuantileOneHotEncoder, make_higgs_splits
from repro.exceptions import ConfigurationError
from repro.experiments.config import HiggsExperimentConfig
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

logger = get_logger(__name__)

__all__ = [
    "HiggsData",
    "prepare_higgs_data",
    "build_higgs_network",
    "train_and_evaluate",
    "repeated_runs",
]


@dataclass
class HiggsData:
    """Encoded train/test matrices plus the fitted encoder and raw splits."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    encoder: QuantileOneHotEncoder
    input_spec: InputSpec
    splits: DatasetSplits

    @property
    def n_train(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.x_test.shape[0])


def prepare_higgs_data(
    n_events: int = 8000,
    n_bins: int = 10,
    test_fraction: float = 0.2,
    seed=0,
    path: Optional[str] = None,
) -> HiggsData:
    """Load/generate HIGGS events and apply the paper's preprocessing."""
    splits = make_higgs_splits(
        n_samples=n_events, test_fraction=test_fraction, balanced=True, seed=seed, path=path
    )
    encoder = QuantileOneHotEncoder(n_bins=n_bins).fit(splits.train.features)
    x_train = encoder.transform(splits.train.features)
    x_test = encoder.transform(splits.test.features)
    return HiggsData(
        x_train=x_train,
        y_train=splits.train.labels,
        x_test=x_test,
        y_test=splits.test.labels,
        encoder=encoder,
        input_spec=InputSpec.from_encoder(encoder),
        splits=splits,
    )


def build_higgs_network(config: HiggsExperimentConfig, seed_offset: int = 0) -> Network:
    """Assemble the Network described by ``config`` (not yet trained).

    The backend named in the config is resolved once at the network level
    and threaded through every BCPNN layer, so the whole stack shares one
    backend instance (one thread pool / communicator) end-to-end.
    """
    rng = as_rng(config.seed + seed_offset)
    network = Network(
        seed=rng,
        name=f"higgs-{config.n_hypercolumns}x{config.n_minicolumns}-{config.head}",
        backend=config.backend,
    )
    network.add(
        StructuralPlasticityLayer(
            n_hypercolumns=config.n_hypercolumns,
            n_minicolumns=config.n_minicolumns,
            hyperparams=config.hyperparams(),
            seed=config.seed + seed_offset + 1,
        )
    )
    if config.head == "sgd":
        network.add(
            SGDClassifier(n_classes=2, learning_rate=0.1, seed=config.seed + seed_offset + 2)
        )
    else:
        network.add(BCPNNClassifier(n_classes=2))
    return network


def train_and_evaluate(
    config: HiggsExperimentConfig,
    data: Optional[HiggsData] = None,
    callbacks: Optional[List[TrainingCallback]] = None,
    seed_offset: int = 0,
    comm=None,
    fault_injection=None,
) -> Dict[str, object]:
    """Train one network and report accuracy, AUC and timing.

    Returns a dict with keys ``accuracy``, ``auc``, ``log_loss``,
    ``train_seconds``, ``train_accuracy``, ``network`` and ``config``.
    ``comm`` (a :class:`repro.comm.Communicator` or a transport spec string)
    switches hidden-layer training to the data-parallel path (see
    ``Network.fit``); ``fault_injection`` is the crash-testing hook
    forwarded to ``fit`` (requires ``config.fault_tolerance`` to survive).
    """
    if data is None:
        data = prepare_higgs_data(
            n_events=config.n_events, n_bins=config.n_bins, seed=config.seed
        )
    network = build_higgs_network(config, seed_offset=seed_offset)
    start = time.perf_counter()
    history = network.fit(
        data.x_train,
        data.y_train,
        input_spec=data.input_spec,
        schedule=config.schedule(),
        callbacks=callbacks,
        comm=comm,
        fault_injection=fault_injection,
        checkpoint_dir=config.checkpoint_dir,
        checkpoint_every=config.checkpoint_every,
        checkpoint_keep=config.checkpoint_keep,
        resume=config.resume,
    )
    train_seconds = time.perf_counter() - start
    evaluation = network.evaluate(data.x_test, data.y_test)
    result: Dict[str, object] = {
        "accuracy": float(evaluation["accuracy"]),
        "auc": float(evaluation.get("auc", float("nan"))),
        "log_loss": float(evaluation["log_loss"]),
        "train_seconds": float(train_seconds),
        "train_accuracy": float(history.last_metric("train_accuracy")),
        "n_hypercolumns": config.n_hypercolumns,
        "n_minicolumns": config.n_minicolumns,
        "density": config.density,
        "head": config.head,
        "network": network,
        "config": config,
    }
    logger.info(
        "trained %s: accuracy=%.4f auc=%.4f (%.1fs)",
        network.name,
        result["accuracy"],
        result["auc"],
        train_seconds,
    )
    return result


def repeated_runs(
    config: HiggsExperimentConfig,
    repeats: int,
    data: Optional[HiggsData] = None,
) -> Dict[str, object]:
    """Run the same configuration ``repeats`` times and aggregate statistics.

    The paper reports the mean of 10 repetitions per configuration; this
    returns mean and standard deviation of accuracy / AUC / training time.
    """
    if repeats < 1:
        raise ConfigurationError("repeats must be at least 1")
    if data is None:
        data = prepare_higgs_data(n_events=config.n_events, n_bins=config.n_bins, seed=config.seed)
    accuracies, aucs, times = [], [], []
    for repeat in range(repeats):
        result = train_and_evaluate(config, data=data, seed_offset=97 * repeat)
        accuracies.append(result["accuracy"])
        aucs.append(result["auc"])
        times.append(result["train_seconds"])
    return {
        "config": config,
        "repeats": repeats,
        "accuracy_mean": float(np.mean(accuracies)),
        "accuracy_std": float(np.std(accuracies)),
        "auc_mean": float(np.nanmean(aucs)),
        "auc_std": float(np.nanstd(aucs)),
        "train_seconds_mean": float(np.mean(times)),
        "train_seconds_std": float(np.std(times)),
        "accuracies": [float(a) for a in accuracies],
        "aucs": [float(a) for a in aucs],
        "train_seconds": [float(t) for t in times],
    }
