"""Experiment E9: data-parallel training ablation over the comm transports.

BCPNN's local learning means data-parallel training only exchanges
probability-trace statistics (one packed allreduce per batch).  This
experiment trains the same hidden layer serially and with 2/4/8 ranks on a
selectable :mod:`repro.comm` transport — in-process threads or real OS
processes — and verifies that (a) the learned traces are numerically
equivalent and (b) the communication volume grows with the trace size, not
with the batch size — the property the paper uses to argue BCPNN "scales
horizontally without the limiting factor on communication" (Section II-B).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.backend.distributed import DistributedTrainer
from repro.comm import get_communicator
from repro.core import BCPNNHyperParameters, InputSpec, StructuralPlasticityLayer
from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.higgs_pipeline import HiggsData, prepare_higgs_data
from repro.instrumentation.reports import format_table
from repro.utils.logging import get_logger
from repro.utils.rng import as_rng

logger = get_logger(__name__)

__all__ = ["run_distributed_equivalence"]


def _fresh_layer(
    input_spec: InputSpec, n_minicolumns: int, seed: int, backend: str = "numpy",
    sparse: str = "auto",
) -> StructuralPlasticityLayer:
    hyperparams = BCPNNHyperParameters(taupdt=0.02, density=0.5, competition="softmax")
    layer = StructuralPlasticityLayer(
        n_hypercolumns=2, n_minicolumns=n_minicolumns, hyperparams=hyperparams,
        seed=seed, backend=backend, sparse=sparse,
    )
    layer.build(input_spec)
    return layer


def run_distributed_equivalence(
    rank_counts: Sequence[int] = (1, 2, 4),
    scale: Optional[ExperimentScale] = None,
    n_minicolumns: int = 30,
    epochs: int = 2,
    batch_size: int = 256,
    data: Optional[HiggsData] = None,
    seed: int = 0,
    backend: str = "numpy",
    transport: str = "thread",
    pipeline: bool = False,
    weight_refresh_tol: float = 0.0,
    sparse: str = "auto",
    comm_overlap: str = "auto",
    sparse_payload: str = "auto",
) -> Dict[str, object]:
    """Compare serial vs. rank-sharded training of one hidden layer.

    The competition rule is forced to the deterministic ``"softmax"`` mode so
    runs are comparable.  Returns per-rank-count rows with the maximum trace
    deviation from the serial reference and the communication volume.
    ``backend`` selects the *compute* backend each rank uses for its local
    shard arithmetic; ``transport`` selects the :mod:`repro.comm` transport
    carrying the per-batch allreduce ("serial" is only valid for one rank,
    "thread" runs in-process ranks, "process" real OS processes).
    ``pipeline``/``weight_refresh_tol`` exercise the pipelined shard gather
    and the rank-invariant stale-weights caching — every run (including the
    serial reference) uses the same options, so the equivalence check also
    validates that the refresh decisions are rank-invariant.
    """
    scale = scale or get_scale()
    if data is None:
        data = prepare_higgs_data(n_events=min(scale.n_events, 6000), seed=seed)
    x = data.x_train
    input_spec = data.input_spec

    # Serial reference (single rank, trained through the same SPMD program).
    reference_layer = _fresh_layer(
        input_spec, n_minicolumns, seed=seed + 1, backend=backend, sparse=sparse
    )
    with get_communicator("serial") as reference_comm:
        DistributedTrainer(reference_comm).train_layer(
            reference_layer, x, epochs=epochs, batch_size=batch_size,
            rng=as_rng(seed + 2), shuffle=True,
            pipeline=pipeline, weight_refresh_tol=weight_refresh_tol,
            comm_overlap=comm_overlap, sparse_payload=sparse_payload,
        )

    rows: List[Dict[str, object]] = []
    for ranks in rank_counts:
        # A single rank needs no transport machinery; larger counts use the
        # requested transport (the factory rejects ranks > 1 on "serial").
        spec = "serial" if int(ranks) == 1 else transport
        comm = get_communicator(spec, ranks=int(ranks))
        try:
            layer = _fresh_layer(
                input_spec, n_minicolumns, seed=seed + 1, backend=backend, sparse=sparse
            )
            trainer = DistributedTrainer(comm)
            report = trainer.train_layer(
                layer, x, epochs=epochs, batch_size=batch_size,
                rng=as_rng(seed + 2), shuffle=True,
                pipeline=pipeline, weight_refresh_tol=weight_refresh_tol,
                comm_overlap=comm_overlap, sparse_payload=sparse_payload,
            )
            max_dev = float(
                max(
                    np.max(np.abs(layer.traces.p_i - reference_layer.traces.p_i)),
                    np.max(np.abs(layer.traces.p_j - reference_layer.traces.p_j)),
                    np.max(np.abs(layer.traces.p_ij - reference_layer.traces.p_ij)),
                )
            )
        finally:
            comm.close()
        rows.append(
            {
                "ranks": int(ranks),
                "transport": comm.transport,
                "max_trace_deviation": max_dev,
                "allreduce_calls": int(report.allreduce_calls),
                "mbytes_communicated": float(report.bytes_communicated) / 1e6,
                "global_batches": int(report.global_batches),
                "equivalent": bool(max_dev < 1e-8),
            }
        )
        logger.info(
            "distributed transport=%s ranks=%d max deviation=%.2e", comm.transport, ranks, max_dev
        )

    table = format_table(
        rows,
        columns=[
            "ranks",
            "transport",
            "max_trace_deviation",
            "allreduce_calls",
            "mbytes_communicated",
            "equivalent",
        ],
        precision=10,
        title="E9: data-parallel trace-reduction equivalence",
    )
    return {
        "experiment": "distributed_equivalence",
        "backend": backend,
        "transport": transport,
        "rows": rows,
        "table": table,
        "all_equivalent": all(r["equivalent"] for r in rows),
    }
