"""Experiment E1 (Fig. 1): receptive fields concentrating on informative pixels.

Figure 1 of the paper shows three HCUs whose initially random receptive
fields migrate, through structural plasticity, onto the central pixels of
MNIST digits (where the information is) and away from the blank fringes.
This experiment reproduces that behaviour with the procedural digit
generator: it trains a small network with per-pixel (complementary coded)
input hypercolumns and reports how the fraction of active connections inside
the informative central region grows from the random initial mask to the
trained mask.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core import (
    BCPNNClassifier,
    BCPNNHyperParameters,
    InputSpec,
    Network,
    StructuralPlasticityLayer,
    TrainingSchedule,
)
from repro.core.layers import complementary_encode
from repro.datasets.mnist import IMAGE_SIZE, SyntheticDigits
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["run_mnist_receptive_fields", "central_mass"]


def central_mass(mask_row: np.ndarray, image_size: int = IMAGE_SIZE, margin: int = 7) -> float:
    """Fraction of a mask's active connections that fall in the image centre.

    ``margin`` pixels on every side are considered "fringe"; with the default
    7-pixel margin the central region is the 14x14 block where the digit
    strokes live.
    """
    mask_image = np.asarray(mask_row, dtype=np.float64).reshape(image_size, image_size)
    total = mask_image.sum()
    if total <= 0:
        return 0.0
    central = mask_image[margin : image_size - margin, margin : image_size - margin].sum()
    return float(central / total)


def run_mnist_receptive_fields(
    n_hypercolumns: int = 3,
    n_minicolumns: int = 20,
    density: float = 0.15,
    n_samples: int = 1500,
    epochs: int = 6,
    digits=(3, 5, 8),
    seed: int = 0,
    backend: str = "numpy",
) -> Dict[str, object]:
    """Train on synthetic digits and measure receptive-field migration.

    Returns the initial and final masks (per HCU, reshaped to the pixel
    grid), the central-mass statistic before/after training, and the trained
    network's accuracy on held-out digits.
    """
    generator = SyntheticDigits(seed=seed)
    train = generator.sample(n_samples, digits=digits)
    test = generator.sample(max(200, n_samples // 5), digits=digits)

    x_train = complementary_encode(train.features)
    x_test = complementary_encode(test.features)
    input_spec = InputSpec.uniform(IMAGE_SIZE * IMAGE_SIZE, 2)

    hyperparams = BCPNNHyperParameters(
        taupdt=0.03, density=density, swap_fraction=0.4, mask_update_period=1
    )
    layer = StructuralPlasticityLayer(
        n_hypercolumns=n_hypercolumns,
        n_minicolumns=n_minicolumns,
        hyperparams=hyperparams,
        seed=seed + 1,
    )
    network = Network(seed=seed, name="mnist-receptive-fields", backend=backend)
    network.add(layer)
    network.add(BCPNNClassifier(n_classes=len(digits)))

    # Capture the random initial masks by building before fitting.
    network.build(input_spec)
    initial_masks = layer.receptive_field_masks().copy()
    # ``fit`` rebuilds the layers; seed the same layer RNG state by rebuilding
    # is acceptable because we only compare aggregate central-mass statistics.
    schedule = TrainingSchedule(hidden_epochs=epochs, classifier_epochs=4, batch_size=64)
    network.fit(x_train, train.labels, input_spec=input_spec, schedule=schedule)
    final_masks = layer.receptive_field_masks().copy()

    # Masks are over per-pixel hypercolumns: one entry per pixel.
    initial_central = [central_mass(initial_masks[h]) for h in range(n_hypercolumns)]
    final_central = [central_mass(final_masks[h]) for h in range(n_hypercolumns)]
    evaluation = network.evaluate(x_test, test.labels)
    logger.info(
        "mnist receptive fields: central mass %.3f -> %.3f, accuracy %.3f",
        float(np.mean(initial_central)), float(np.mean(final_central)), evaluation["accuracy"],
    )
    return {
        "experiment": "fig1_mnist_fields",
        "digits": list(digits),
        "initial_masks": initial_masks,
        "final_masks": final_masks,
        "initial_central_mass": [float(v) for v in initial_central],
        "final_central_mass": [float(v) for v in final_central],
        "central_mass_gain": float(np.mean(final_central) - np.mean(initial_central)),
        "accuracy": float(evaluation["accuracy"]),
        "image_size": IMAGE_SIZE,
    }
