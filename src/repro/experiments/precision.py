"""Experiment E10: numerical-precision ablation (FPGA / posit stand-in).

StreamBrain's FPGA backend exists to explore reduced and alternative number
formats (posits).  This experiment trains the same Higgs configuration under
float64, float32, float16 and the posit16 model and reports the accuracy /
AUC degradation relative to the double-precision reference, quantifying how
much numerical headroom the BCPNN learning rule actually needs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, HiggsExperimentConfig, get_scale
from repro.experiments.higgs_pipeline import HiggsData, prepare_higgs_data, train_and_evaluate
from repro.instrumentation.reports import format_table
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["run_precision_ablation"]


def run_precision_ablation(
    precisions: Sequence[str] = ("numpy", "float32", "float16", "posit16"),
    scale: Optional[ExperimentScale] = None,
    data: Optional[HiggsData] = None,
    n_minicolumns: int = 60,
    seed: int = 0,
) -> Dict[str, object]:
    """Train the same configuration under different numeric representations.

    ``"numpy"`` is the float64 reference; the others are the quantising
    backends registered in :mod:`repro.backend.registry`.
    """
    scale = scale or get_scale()
    if data is None:
        data = prepare_higgs_data(n_events=min(scale.n_events, 8000), seed=seed)

    rows: List[Dict[str, object]] = []
    reference_accuracy = None
    for backend in precisions:
        config = HiggsExperimentConfig(
            n_hypercolumns=1,
            n_minicolumns=n_minicolumns,
            density=0.4,
            head="sgd",
            n_events=scale.n_events,
            hidden_epochs=scale.hidden_epochs,
            classifier_epochs=scale.classifier_epochs,
            batch_size=scale.batch_size,
            backend=backend,
            seed=seed,
        )
        outcome = train_and_evaluate(config, data=data)
        if reference_accuracy is None:
            reference_accuracy = outcome["accuracy"]
        rows.append(
            {
                "backend": backend,
                "accuracy": outcome["accuracy"],
                "auc": outcome["auc"],
                "accuracy_drop_vs_fp64": float(reference_accuracy - outcome["accuracy"]),
                "train_seconds": outcome["train_seconds"],
            }
        )
        logger.info("precision %s: accuracy=%.4f", backend, outcome["accuracy"])

    table = format_table(
        rows,
        columns=["backend", "accuracy", "auc", "accuracy_drop_vs_fp64", "train_seconds"],
        title="E10: precision ablation (FPGA/posit stand-in)",
    )
    return {
        "experiment": "precision_ablation",
        "scale": scale.name,
        "rows": rows,
        "table": table,
    }
