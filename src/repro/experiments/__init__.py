"""Experiment harness: one function per paper table/figure.

Every benchmark under ``benchmarks/`` and every CLI sub-command is a thin
wrapper around a function in this package, so the exact experiment
definitions live in the library (importable, testable) rather than in the
benchmark scripts.  See DESIGN.md for the experiment index (E1-E10).
"""

from repro.experiments.config import ExperimentScale, HiggsExperimentConfig, get_scale
from repro.experiments.higgs_pipeline import (
    HiggsData,
    prepare_higgs_data,
    build_higgs_network,
    train_and_evaluate,
    repeated_runs,
)
from repro.experiments.capacity import run_capacity_sweep
from repro.experiments.receptive_field import run_receptive_field_sweep
from repro.experiments.related_work import run_related_work_comparison
from repro.experiments.insitu import run_insitu_experiment
from repro.experiments.mnist_fields import run_mnist_receptive_fields
from repro.experiments.distributed_experiment import run_distributed_equivalence
from repro.experiments.precision import run_precision_ablation

__all__ = [
    "ExperimentScale",
    "HiggsExperimentConfig",
    "get_scale",
    "HiggsData",
    "prepare_higgs_data",
    "build_higgs_network",
    "train_and_evaluate",
    "repeated_runs",
    "run_capacity_sweep",
    "run_receptive_field_sweep",
    "run_related_work_comparison",
    "run_insitu_experiment",
    "run_mnist_receptive_fields",
    "run_distributed_equivalence",
    "run_precision_ablation",
]
