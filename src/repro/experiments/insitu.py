"""Experiment E2 (Fig. 2): in-situ visualization of receptive-field development.

Trains the paper's illustrative configuration (4 HCUs, 40% receptive-field
density) on the Higgs pipeline with a Catalyst-style adaptor attached, so a
``.vti`` file of the receptive fields is written at the end of every epoch.
The returned record includes the written file list, the mask evolution and
the per-epoch overhead of co-processing (so the "in-situ visualization is
cheap" claim can be checked quantitatively).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.experiments.config import ExperimentScale, HiggsExperimentConfig, get_scale
from repro.experiments.higgs_pipeline import HiggsData, prepare_higgs_data, build_higgs_network
from repro.visualization.catalyst import CatalystAdaptor
from repro.visualization.fields import receptive_field_summary
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["run_insitu_experiment"]


def run_insitu_experiment(
    output_dir: Optional[Union[str, Path]] = None,
    scale: Optional[ExperimentScale] = None,
    n_hypercolumns: int = 4,
    density: float = 0.4,
    data: Optional[HiggsData] = None,
    seed: int = 0,
    write_pgm: bool = True,
    backend: str = "numpy",
) -> Dict[str, object]:
    """Train with the Catalyst adaptor attached and report what it produced."""
    scale = scale or get_scale()
    if output_dir is None:
        output_dir = Path(tempfile.mkdtemp(prefix="repro-insitu-"))
    output_dir = Path(output_dir)
    if data is None:
        data = prepare_higgs_data(n_events=scale.n_events, seed=seed)

    config = HiggsExperimentConfig(
        n_hypercolumns=n_hypercolumns,
        n_minicolumns=min(100, max(scale.mcu_values)),
        density=density,
        head="sgd",
        n_events=scale.n_events,
        hidden_epochs=scale.hidden_epochs,
        classifier_epochs=max(2, scale.classifier_epochs // 2),
        batch_size=scale.batch_size,
        backend=backend,
        seed=seed,
    )

    adaptor = CatalystAdaptor(output_dir=output_dir, write_pgm=write_pgm)

    # Train once *with* and once *without* the adaptor to quantify overhead.
    network_plain = build_higgs_network(config)
    start = time.perf_counter()
    network_plain.fit(
        data.x_train, data.y_train, input_spec=data.input_spec, schedule=config.schedule()
    )
    plain_seconds = time.perf_counter() - start

    network = build_higgs_network(config)
    start = time.perf_counter()
    network.fit(
        data.x_train,
        data.y_train,
        input_spec=data.input_spec,
        schedule=config.schedule(),
        callbacks=[adaptor],
    )
    insitu_seconds = time.perf_counter() - start
    evaluation = network.evaluate(data.x_test, data.y_test)

    masks = network.receptive_field_masks()[0]
    summary = receptive_field_summary(masks, feature_names=data.splits.train.feature_names)
    overhead = max(0.0, insitu_seconds - plain_seconds)
    logger.info(
        "in-situ run: %d files, overhead %.2fs (%.1f%% of training)",
        len(adaptor.written_files), overhead,
        100.0 * overhead / max(plain_seconds, 1e-9),
    )
    return {
        "experiment": "fig2_insitu",
        "scale": scale.name,
        "output_dir": str(output_dir),
        "written_files": [str(p) for p in adaptor.written_files],
        "n_vti_files": sum(1 for p in adaptor.written_files if str(p).endswith(".vti")),
        "mask_evolution": adaptor.mask_evolution(),
        "field_summary": summary,
        "accuracy": float(evaluation["accuracy"]),
        "auc": float(evaluation.get("auc", np.nan)),
        "train_seconds_plain": float(plain_seconds),
        "train_seconds_insitu": float(insitu_seconds),
        "insitu_overhead_seconds": float(overhead),
        "insitu_overhead_fraction": float(overhead / max(plain_seconds, 1e-9)),
    }
