"""Experiment E6 (Section VI): related-work comparison on the same split.

The paper compares BCPNN's AUC (75.5% pure / 76.4% hybrid) against the
literature values for boosted decision trees, shallow neural networks
(~81.6% AUC) and deep neural networks (~88% AUC) on the real HIGGS dataset.
Here all methods are trained on the *same* (synthetic unless the real file
is present) split so the ordering can be checked like-for-like.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Optional

from repro.baselines import (
    GradientBoostingBaseline,
    LogisticRegressionBaseline,
    MLPBaseline,
)
from repro.datasets.preprocessing import Standardizer
from repro.experiments.config import ExperimentScale, HiggsExperimentConfig, get_scale
from repro.experiments.higgs_pipeline import HiggsData, prepare_higgs_data, train_and_evaluate
from repro.instrumentation.reports import format_comparison
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["run_related_work_comparison"]

#: AUC values quoted in the paper's Section VI for the real 11M-event dataset.
PAPER_REFERENCE_AUC = {
    "bcpnn": 0.755,
    "bcpnn+sgd": 0.764,
    "shallow-nn": 0.816,
    "deep-nn": 0.88,
}


def run_related_work_comparison(
    scale: Optional[ExperimentScale] = None,
    data: Optional[HiggsData] = None,
    seed: int = 0,
    include_deep: bool = True,
    backend: str = "numpy",
    pipeline: bool = False,
    weight_refresh_tol: float = 0.0,
    sparse: str = "auto",
) -> Dict[str, object]:
    """Train BCPNN (both heads) and the baselines on one split.

    Returns ``results`` ({method: {accuracy, auc, train_seconds}}), the
    rendered ``table``, and ``paper_reference`` for side-by-side reporting.
    """
    scale = scale or get_scale()
    if data is None:
        data = prepare_higgs_data(n_events=scale.n_events, seed=seed)

    results: Dict[str, Dict[str, float]] = {}

    # ---------------------------------------------------------------- BCPNN
    for head, label in (("bcpnn", "bcpnn"), ("sgd", "bcpnn+sgd")):
        config = HiggsExperimentConfig.from_scale(
            scale,
            head=head,
            density=0.4,
            seed=seed,
            backend=backend,
            pipeline=pipeline,
            weight_refresh_tol=weight_refresh_tol,
            sparse=sparse,
        )
        outcome = train_and_evaluate(config, data=data)
        results[label] = {
            "accuracy": outcome["accuracy"],
            "auc": outcome["auc"],
            "train_seconds": outcome["train_seconds"],
        }

    # ------------------------------------------------------------ baselines
    scaler = Standardizer().fit(data.splits.train.features)
    x_train_raw = scaler.transform(data.splits.train.features)
    x_test_raw = scaler.transform(data.splits.test.features)
    y_train, y_test = data.y_train, data.y_test

    baselines = {
        "logistic-regression": LogisticRegressionBaseline(
            epochs=scale.baseline_epochs, seed=seed
        ),
        "shallow-nn": MLPBaseline(
            hidden_layers=(100,), epochs=scale.baseline_epochs, seed=seed
        ),
        "boosted-trees": GradientBoostingBaseline(
            n_estimators=scale.boosting_rounds, max_depth=4, seed=seed,
            early_stopping_rounds=15,
        ),
    }
    if include_deep:
        baselines["deep-nn"] = MLPBaseline(
            hidden_layers=(100, 100, 100), epochs=scale.baseline_epochs, seed=seed
        )

    for name, model in baselines.items():
        start = perf_counter()
        model.fit(x_train_raw, y_train)
        train_seconds = perf_counter() - start
        evaluation = model.evaluate(x_test_raw, y_test)
        results[name] = {
            "accuracy": evaluation["accuracy"],
            "auc": evaluation.get("auc", float("nan")),
            "train_seconds": train_seconds,
        }
        logger.info(
            "baseline %s: accuracy=%.4f auc=%.4f",
            name,
            evaluation["accuracy"],
            evaluation.get("auc", float("nan")),
        )

    table = format_comparison(
        results,
        metrics=["accuracy", "auc", "train_seconds"],
        title=f"Section VI reproduction: related-work comparison (scale={scale.name})",
    )
    return {
        "experiment": "related_work",
        "scale": scale.name,
        "backend": backend,
        "results": results,
        "paper_reference_auc": dict(PAPER_REFERENCE_AUC),
        "table": table,
    }
