"""Experiments E4/E5 (Fig. 4 and Fig. 5): receptive-field sweep.

A single-HCU network of fixed capacity is trained with receptive-field
densities from 0% to 100%.  Figure 4 plots accuracy (peaking near 40% in the
paper at 68.58%) against a nearly flat training time; Figure 5 shows the
masks chosen at each density.  Both come from the same sweep, so one
function produces both artefacts: accuracy/time rows and mask snapshots.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.config import ExperimentScale, HiggsExperimentConfig, get_scale
from repro.experiments.higgs_pipeline import (
    HiggsData,
    prepare_higgs_data,
    repeated_runs,
    train_and_evaluate,
)
from repro.instrumentation.reports import format_table
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["run_receptive_field_sweep"]


def run_receptive_field_sweep(
    scale: Optional[ExperimentScale] = None,
    density_values: Optional[Sequence[float]] = None,
    n_minicolumns: Optional[int] = None,
    head: str = "sgd",
    repeats: Optional[int] = None,
    data: Optional[HiggsData] = None,
    seed: int = 0,
    collect_masks: bool = True,
    backend: str = "numpy",
    pipeline: bool = False,
    weight_refresh_tol: float = 0.0,
    sparse: str = "auto",
) -> Dict[str, object]:
    """Sweep the receptive-field density of a single-HCU network.

    Returns ``rows`` (density, accuracy, AUC, training time), ``masks`` (one
    representative (H, F) mask matrix per density, for the Fig. 5 panel),
    ``best`` (the peak-accuracy row) and a rendered ``table``.
    """
    scale = scale or get_scale()
    density_values = list(density_values if density_values is not None else scale.density_values)
    n_minicolumns = int(n_minicolumns if n_minicolumns is not None else max(scale.mcu_values))
    repeats = int(repeats if repeats is not None else scale.repeats)
    if data is None:
        data = prepare_higgs_data(n_events=scale.n_events, seed=seed)

    rows: List[Dict[str, object]] = []
    masks: Dict[float, np.ndarray] = {}
    for density in density_values:
        config = HiggsExperimentConfig(
            n_hypercolumns=1,
            n_minicolumns=n_minicolumns,
            density=float(density),
            head=head,
            n_events=scale.n_events,
            hidden_epochs=scale.hidden_epochs,
            classifier_epochs=scale.classifier_epochs,
            batch_size=scale.batch_size,
            backend=backend,
            seed=seed,
            pipeline=pipeline,
            weight_refresh_tol=weight_refresh_tol,
            sparse=sparse,
        )
        aggregate = repeated_runs(config, repeats=repeats, data=data)
        rows.append(
            {
                "density": float(density),
                "accuracy_mean": aggregate["accuracy_mean"],
                "accuracy_std": aggregate["accuracy_std"],
                "auc_mean": aggregate["auc_mean"],
                "train_seconds_mean": aggregate["train_seconds_mean"],
            }
        )
        if collect_masks:
            # One extra run to capture the trained mask for the Fig. 5 panel.
            single = train_and_evaluate(config, data=data, seed_offset=1)
            network = single["network"]
            masks[float(density)] = network.receptive_field_masks()[0]
        logger.info(
            "receptive-field sweep: density=%.2f accuracy=%.4f time=%.1fs",
            density, rows[-1]["accuracy_mean"], rows[-1]["train_seconds_mean"],
        )

    best = max(rows, key=lambda r: r["accuracy_mean"])
    table = format_table(
        rows,
        columns=["density", "accuracy_mean", "accuracy_std", "auc_mean", "train_seconds_mean"],
        title=(
            f"Fig. 4 reproduction: receptive-field sweep "
            f"(1 HCU x {n_minicolumns} MCUs, head={head}, scale={scale.name})"
        ),
    )
    return {
        "experiment": "fig4_fig5_receptive_field",
        "scale": scale.name,
        "backend": backend,
        "n_minicolumns": n_minicolumns,
        "head": head,
        "repeats": repeats,
        "rows": rows,
        "masks": masks,
        "best": best,
        "table": table,
    }
