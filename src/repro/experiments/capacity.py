"""Experiment E3 (Fig. 3): network capacity sweep.

Sweeps the number of hidden HCUs and MCUs-per-HCU at a fixed 30% receptive
field, measuring test accuracy and training time for each configuration —
the bars and lines of the paper's Figure 3.  The headline numbers of the
paper (69.15% accuracy / 76.4% AUC with the 1 HCU x 3000 MCU + SGD hybrid)
correspond to the largest single-HCU entry of this sweep with ``head="sgd"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.config import ExperimentScale, HiggsExperimentConfig, get_scale
from repro.experiments.higgs_pipeline import HiggsData, prepare_higgs_data, repeated_runs
from repro.instrumentation.reports import format_table
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = ["run_capacity_sweep"]


def run_capacity_sweep(
    scale: Optional[ExperimentScale] = None,
    hcu_values: Optional[Sequence[int]] = None,
    mcu_values: Optional[Sequence[int]] = None,
    density: float = 0.3,
    head: str = "sgd",
    repeats: Optional[int] = None,
    data: Optional[HiggsData] = None,
    seed: int = 0,
    backend: str = "numpy",
    pipeline: bool = False,
    weight_refresh_tol: float = 0.0,
    sparse: str = "auto",
) -> Dict[str, object]:
    """Run the HCU x MCU capacity sweep and return a result table.

    Returns a dict with ``rows`` (one per configuration: hcus, mcus, mean/std
    accuracy, AUC and training time), the rendered ``table`` string and the
    ``best`` row by mean accuracy.
    """
    scale = scale or get_scale()
    hcu_values = list(hcu_values if hcu_values is not None else scale.hcu_values)
    mcu_values = list(mcu_values if mcu_values is not None else scale.mcu_values)
    repeats = int(repeats if repeats is not None else scale.repeats)
    if data is None:
        data = prepare_higgs_data(n_events=scale.n_events, seed=seed)

    rows: List[Dict[str, object]] = []
    for mcus in mcu_values:
        for hcus in hcu_values:
            config = HiggsExperimentConfig(
                n_hypercolumns=int(hcus),
                n_minicolumns=int(mcus),
                density=density,
                head=head,
                n_events=scale.n_events,
                hidden_epochs=scale.hidden_epochs,
                classifier_epochs=scale.classifier_epochs,
                batch_size=scale.batch_size,
                backend=backend,
                seed=seed,
                pipeline=pipeline,
                weight_refresh_tol=weight_refresh_tol,
                sparse=sparse,
            )
            aggregate = repeated_runs(config, repeats=repeats, data=data)
            row = {
                "hcus": int(hcus),
                "mcus": int(mcus),
                "accuracy_mean": aggregate["accuracy_mean"],
                "accuracy_std": aggregate["accuracy_std"],
                "auc_mean": aggregate["auc_mean"],
                "train_seconds_mean": aggregate["train_seconds_mean"],
                "train_seconds_std": aggregate["train_seconds_std"],
            }
            rows.append(row)
            logger.info(
                "capacity sweep: H=%d M=%d accuracy=%.4f time=%.1fs",
                hcus, mcus, row["accuracy_mean"], row["train_seconds_mean"],
            )
    best = max(rows, key=lambda r: r["accuracy_mean"])
    table = format_table(
        rows,
        columns=[
            "mcus", "hcus", "accuracy_mean", "accuracy_std", "auc_mean",
            "train_seconds_mean", "train_seconds_std",
        ],
        title=(
            f"Fig. 3 reproduction: capacity sweep "
            f"(density={density:.0%}, head={head}, scale={scale.name})"
        ),
    )
    return {
        "experiment": "fig3_capacity",
        "scale": scale.name,
        "backend": backend,
        "density": density,
        "head": head,
        "repeats": repeats,
        "rows": rows,
        "best": best,
        "table": table,
    }
