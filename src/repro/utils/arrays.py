"""Vectorised array primitives shared by kernels, layers and baselines.

All hot-path helpers here follow the HPC-Python guidance used throughout the
project: no Python loops over samples, contiguous arrays, in-place updates
where the caller owns the buffer, and use of BLAS-backed matmul for anything
quadratic.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.exceptions import DataError

__all__ = [
    "one_hot",
    "row_softmax",
    "blockwise_softmax",
    "blockwise_argmax",
    "blockwise_sample",
    "moving_average_update",
    "stable_log",
    "batch_slices",
    "block_offsets",
    "normalize_blocks",
]

#: Numerical floor used before taking logarithms of probability traces.
EPS = 1e-12


def one_hot(labels: np.ndarray, n_classes: int, dtype=np.float64) -> np.ndarray:
    """Encode integer labels as a dense one-hot matrix.

    Parameters
    ----------
    labels:
        Integer vector of shape ``(n,)`` with values in ``[0, n_classes)``.
    n_classes:
        Number of classes / columns of the output.
    """
    labels = np.asarray(labels)
    if labels.ndim != 1:
        raise DataError(f"labels must be 1-D, got shape {labels.shape}")
    if n_classes <= 0:
        raise DataError("n_classes must be positive")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise DataError(
            f"labels must lie in [0, {n_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    out = np.zeros((labels.shape[0], n_classes), dtype=dtype)
    if labels.size:
        out[np.arange(labels.shape[0]), labels.astype(np.int64)] = 1.0
    return out


def row_softmax(logits: np.ndarray, out: np.ndarray = None) -> np.ndarray:
    """Numerically-stable softmax along the last axis."""
    logits = np.asarray(logits, dtype=np.float64)
    # `shifted` is always a fresh buffer, so exponentiate it in place.
    shifted = logits - logits.max(axis=-1, keepdims=True)
    np.exp(shifted, out=shifted)
    denom = shifted.sum(axis=-1, keepdims=True)
    if out is None:
        return shifted / denom
    np.divide(shifted, denom, out=out)
    return out


def block_offsets(block_sizes: Sequence[int]) -> np.ndarray:
    """Return cumulative offsets ``[0, s0, s0+s1, ...]`` for block layouts."""
    sizes = np.asarray(block_sizes, dtype=np.int64)
    if sizes.ndim != 1 or sizes.size == 0 or np.any(sizes <= 0):
        raise DataError("block_sizes must be a non-empty sequence of positive ints")
    return np.concatenate([[0], np.cumsum(sizes)])


def blockwise_softmax(
    support: np.ndarray, block_sizes: Sequence[int], out: np.ndarray = None
) -> np.ndarray:
    """Softmax applied independently within each hypercolumn block.

    ``support`` has shape ``(n_samples, sum(block_sizes))``; the result has
    the same shape, and each block of each row sums to one.  When all blocks
    share the same size the computation is reshaped to a single 3-D softmax
    (no Python loop); otherwise the loop runs over blocks (few) rather than
    samples (many).  ``out`` receives the result when given (it may alias
    ``support``), which lets the execution engine stream batches through a
    preallocated activation buffer.
    """
    support = np.asarray(support, dtype=np.float64)
    if support.ndim != 2:
        raise DataError(f"support must be 2-D, got shape {support.shape}")
    sizes = np.asarray(block_sizes, dtype=np.int64)
    total = int(sizes.sum())
    if support.shape[1] != total:
        raise DataError(
            f"support has {support.shape[1]} columns, block sizes sum to {total}"
        )
    if out is not None and out.shape != support.shape:
        raise DataError(
            f"out has shape {out.shape}, expected {support.shape}"
        )
    if np.all(sizes == sizes[0]):
        n, _ = support.shape
        h = sizes.shape[0]
        m = int(sizes[0])
        cube = support.reshape(n, h, m)
        if out is None:
            return row_softmax(cube).reshape(n, total)
        ocube = out.reshape(n, h, m)
        np.subtract(cube, cube.max(axis=-1, keepdims=True), out=ocube)
        np.exp(ocube, out=ocube)
        ocube /= ocube.sum(axis=-1, keepdims=True)
        return out
    offsets = block_offsets(sizes)
    if out is None:
        out = np.empty_like(support)
    for b in range(sizes.shape[0]):
        lo, hi = offsets[b], offsets[b + 1]
        out[:, lo:hi] = row_softmax(support[:, lo:hi])
    return out


def blockwise_argmax(activations: np.ndarray, block_sizes: Sequence[int]) -> np.ndarray:
    """Return the argmax index *within each block* for each sample.

    Output shape is ``(n_samples, n_blocks)`` with local indices.
    """
    activations = np.asarray(activations)
    sizes = np.asarray(block_sizes, dtype=np.int64)
    offsets = block_offsets(sizes)
    if activations.shape[1] != offsets[-1]:
        raise DataError("activations width does not match block sizes")
    if np.all(sizes == sizes[0]):
        n = activations.shape[0]
        return activations.reshape(n, sizes.shape[0], int(sizes[0])).argmax(axis=2)
    cols = []
    for b in range(sizes.shape[0]):
        lo, hi = offsets[b], offsets[b + 1]
        cols.append(activations[:, lo:hi].argmax(axis=1))
    return np.stack(cols, axis=1)


def blockwise_sample(
    activations: np.ndarray, block_sizes: Sequence[int], rng: np.random.Generator
) -> np.ndarray:
    """Sample a winner per block according to the block's probabilities.

    Returns a one-hot matrix of the same shape as ``activations``.  Used by
    the spiking-flavoured evaluation mode.
    """
    activations = np.asarray(activations, dtype=np.float64)
    sizes = np.asarray(block_sizes, dtype=np.int64)
    offsets = block_offsets(sizes)
    n = activations.shape[0]
    out = np.zeros_like(activations)
    u = rng.random((n, sizes.shape[0]))
    for b in range(sizes.shape[0]):
        lo, hi = offsets[b], offsets[b + 1]
        block = activations[:, lo:hi]
        norm = block.sum(axis=1, keepdims=True)
        norm[norm <= 0.0] = 1.0
        cdf = np.cumsum(block / norm, axis=1)
        picks = (u[:, b : b + 1] > cdf).sum(axis=1)
        picks = np.minimum(picks, hi - lo - 1)
        out[np.arange(n), lo + picks] = 1.0
    return out


def moving_average_update(trace: np.ndarray, target: np.ndarray, rate: float) -> np.ndarray:
    """In-place exponential moving-average update ``trace += rate*(target-trace)``.

    This is the fundamental BCPNN trace update.  The operation is performed
    without temporaries beyond one buffer the size of ``target``.
    """
    if trace.shape != np.shape(target):
        raise DataError(
            f"trace shape {trace.shape} does not match target shape {np.shape(target)}"
        )
    if not 0.0 <= rate <= 1.0:
        raise DataError(f"rate must be in [0, 1], got {rate}")
    # trace = (1-rate)*trace + rate*target, done in place on `trace`.
    trace *= 1.0 - rate
    trace += rate * np.asarray(target, dtype=trace.dtype)
    return trace


def stable_log(values: np.ndarray, floor: float = EPS) -> np.ndarray:
    """Logarithm with a numerical floor, used when converting traces to weights."""
    values = np.asarray(values, dtype=np.float64)
    return np.log(np.maximum(values, floor))


def batch_slices(n_samples: int, batch_size: int) -> Iterator[slice]:
    """Yield contiguous slices covering ``range(n_samples)`` in order."""
    if n_samples < 0:
        raise DataError("n_samples must be non-negative")
    if batch_size <= 0:
        raise DataError("batch_size must be positive")
    for start in range(0, n_samples, batch_size):
        yield slice(start, min(start + batch_size, n_samples))


def normalize_blocks(values: np.ndarray, block_sizes: Sequence[int]) -> np.ndarray:
    """Normalise each block of each row to sum to one (safe for zero blocks)."""
    values = np.asarray(values, dtype=np.float64)
    sizes = np.asarray(block_sizes, dtype=np.int64)
    offsets = block_offsets(sizes)
    if values.ndim == 1:
        values = values[None, :]
        squeeze = True
    else:
        squeeze = False
    out = values.copy()
    for b in range(sizes.shape[0]):
        lo, hi = offsets[b], offsets[b + 1]
        sums = out[:, lo:hi].sum(axis=1, keepdims=True)
        sums[sums <= 0.0] = 1.0
        out[:, lo:hi] /= sums
    return out[0] if squeeze else out


def split_into_chunks(n_items: int, n_chunks: int) -> List[Tuple[int, int]]:
    """Split ``range(n_items)`` into ``n_chunks`` near-equal contiguous ranges.

    Used by the parallel and distributed backends for static work
    partitioning.  Chunks may be empty when ``n_chunks > n_items``.
    """
    if n_chunks <= 0:
        raise DataError("n_chunks must be positive")
    base = n_items // n_chunks
    rem = n_items % n_chunks
    ranges = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < rem else 0)
        ranges.append((start, start + size))
        start += size
    return ranges
