"""Shared utilities: RNG handling, validation, array helpers, configuration."""

from repro.utils.rng import as_rng, derive_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_fraction,
    check_positive_int,
    check_probability_matrix,
    check_one_hot,
)
from repro.utils.arrays import (
    batch_slices,
    one_hot,
    row_softmax,
    blockwise_softmax,
    moving_average_update,
    stable_log,
)
from repro.utils.config import FrozenConfig, asdict_shallow
from repro.utils.logging import get_logger

__all__ = [
    "as_rng",
    "derive_rng",
    "spawn_rngs",
    "check_array",
    "check_fraction",
    "check_positive_int",
    "check_probability_matrix",
    "check_one_hot",
    "batch_slices",
    "one_hot",
    "row_softmax",
    "blockwise_softmax",
    "moving_average_update",
    "stable_log",
    "FrozenConfig",
    "asdict_shallow",
    "get_logger",
]
