"""Lightweight configuration objects.

The experiment harness and CLI pass around many hyper-parameters; this module
provides a small immutable mapping (:class:`FrozenConfig`) with dotted-path
access, dictionary round-tripping and JSON persistence, without pulling in a
configuration framework.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Union

from repro.exceptions import ConfigurationError

__all__ = ["FrozenConfig", "asdict_shallow", "load_json_config", "dump_json_config"]


def asdict_shallow(obj: Any) -> Dict[str, Any]:
    """Return a shallow dict view of a dataclass, mapping or plain object."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: getattr(obj, f.name) for f in dataclasses.fields(obj)}
    if isinstance(obj, Mapping):
        return dict(obj)
    if hasattr(obj, "__dict__"):
        return {k: v for k, v in vars(obj).items() if not k.startswith("_")}
    raise ConfigurationError(f"cannot convert {type(obj).__name__} to a dict")


class FrozenConfig(Mapping[str, Any]):
    """Immutable string-keyed configuration with dotted access.

    Examples
    --------
    >>> cfg = FrozenConfig({"model": {"n_hcu": 4}, "seed": 1})
    >>> cfg["model.n_hcu"]
    4
    >>> cfg.get("missing", 7)
    7
    """

    def __init__(self, data: Optional[Mapping[str, Any]] = None, **kwargs: Any) -> None:
        merged: Dict[str, Any] = {}
        if data is not None:
            merged.update(dict(data))
        merged.update(kwargs)
        self._data: Dict[str, Any] = {}
        for key, value in merged.items():
            if not isinstance(key, str):
                raise ConfigurationError("configuration keys must be strings")
            if isinstance(value, Mapping) and not isinstance(value, FrozenConfig):
                value = FrozenConfig(value)
            self._data[key] = value

    # Mapping protocol -----------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        if "." in key:
            head, rest = key.split(".", 1)
            child = self._data[head]
            if not isinstance(child, FrozenConfig):
                raise KeyError(key)
            return child[rest]
        return self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        if not isinstance(key, str):
            return False
        try:
            self[key]
            return True
        except KeyError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FrozenConfig({self.to_dict()!r})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FrozenConfig):
            return self.to_dict() == other.to_dict()
        if isinstance(other, Mapping):
            return self.to_dict() == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(json.dumps(self.to_dict(), sort_keys=True, default=str))

    # Convenience ----------------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def updated(self, **overrides: Any) -> "FrozenConfig":
        """Return a new config with top-level keys overridden."""
        data = self.to_dict()
        data.update(overrides)
        return FrozenConfig(data)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        for key, value in self._data.items():
            out[key] = value.to_dict() if isinstance(value, FrozenConfig) else value
        return out


def load_json_config(path: Union[str, Path]) -> FrozenConfig:
    """Load a JSON file into a :class:`FrozenConfig`."""
    path = Path(path)
    try:
        with path.open("r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(f"failed to load config from {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError(f"config file {path} must contain a JSON object")
    return FrozenConfig(data)


def dump_json_config(
    config: Union[FrozenConfig, Mapping[str, Any]], path: Union[str, Path]
) -> Path:
    """Write a configuration mapping as pretty-printed JSON."""
    path = Path(path)
    data = config.to_dict() if isinstance(config, FrozenConfig) else dict(config)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
    return path
