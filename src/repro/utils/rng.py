"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either ``None``, an
integer seed, or a :class:`numpy.random.Generator`.  Components never call
the global NumPy RNG; instead they normalise their argument through
:func:`as_rng` so that experiments are reproducible and independent
components can be given independent streams via :func:`derive_rng` /
:func:`spawn_rngs` (which use NumPy's ``SeedSequence`` spawning so streams
do not overlap).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Union

import numpy as np

RandomState = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = ["RandomState", "as_rng", "derive_rng", "spawn_rngs", "rng_state_signature"]


def as_rng(seed: RandomState = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed:
        ``None`` (fresh unpredictable generator), an ``int`` seed, a
        ``SeedSequence``, or an existing ``Generator`` (returned as-is).

    Returns
    -------
    numpy.random.Generator
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, numpy.random.SeedSequence or "
        f"numpy.random.Generator, got {type(seed).__name__}"
    )


def derive_rng(rng: np.random.Generator, *keys: Union[int, str]) -> np.random.Generator:
    """Derive a child generator from ``rng`` keyed by ``keys``.

    The child stream is a deterministic function of the parent's *current*
    state and the key material, so two different keys give statistically
    independent streams while remaining reproducible.
    """
    if not isinstance(rng, np.random.Generator):
        raise TypeError("derive_rng expects a numpy.random.Generator")
    material: List[int] = []
    for key in keys:
        if isinstance(key, str):
            material.extend(key.encode("utf-8"))
        else:
            material.append(int(key) & 0xFFFFFFFF)
    # Pull one word from the parent so repeated calls with the same key
    # still advance, then build a SeedSequence from it plus the key material.
    word = int(rng.integers(0, 2**32, dtype=np.uint64))
    seq = np.random.SeedSequence([word, *material] if material else [word])
    return np.random.default_rng(seq)


def spawn_rngs(seed: RandomState, count: int) -> List[np.random.Generator]:
    """Create ``count`` independent generators from one seed.

    Uses ``SeedSequence.spawn`` which guarantees non-overlapping streams;
    used by the multiprocessing backend to give each worker its own RNG.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    if isinstance(seed, np.random.Generator):
        # Generators do not expose their SeedSequence portably; derive
        # children by drawing entropy words from the parent.
        entropy = [int(v) for v in seed.integers(0, 2**32, size=4, dtype=np.uint64)]
        base = np.random.SeedSequence(entropy)
    elif isinstance(seed, np.random.SeedSequence):
        base = seed
    elif seed is None:
        base = np.random.SeedSequence()
    else:
        base = np.random.SeedSequence(int(seed))
    return [np.random.default_rng(child) for child in base.spawn(count)]


def rng_state_signature(rng: np.random.Generator) -> int:
    """Return a small integer fingerprint of the generator state.

    Useful in tests to assert that a code path did (or did not) consume
    randomness.  The fingerprint is derived from the serialised bit
    generator state and is stable across calls that do not draw.
    """
    state = rng.bit_generator.state
    return hash(repr(sorted(state.items(), key=lambda kv: kv[0]))) & 0x7FFFFFFF


def check_independent(rngs: Sequence[np.random.Generator], draws: int = 16) -> bool:
    """Heuristic check that generators produce distinct streams.

    Draws ``draws`` uint32 values from a *copy* of each generator's state and
    verifies no two sequences are identical.  Primarily a test helper.
    """
    seen = set()
    for rng in rngs:
        clone = np.random.default_rng()
        clone.bit_generator.state = rng.bit_generator.state
        key = tuple(int(v) for v in clone.integers(0, 2**32, size=draws, dtype=np.uint64))
        if key in seen:
            return False
        seen.add(key)
    return True


def iter_batches_shuffled(
    rng: np.random.Generator, n_samples: int, batch_size: int
) -> Iterable[np.ndarray]:
    """Yield arrays of shuffled indices covering ``range(n_samples)``.

    The final batch may be smaller than ``batch_size``.  This is the single
    shuffling primitive used by trainers so that shuffling behaviour is
    consistent between backends.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    order = rng.permutation(n_samples)
    for start in range(0, n_samples, batch_size):
        yield order[start : start + batch_size]
