"""Logging configuration helpers.

The library never configures the root logger; it only attaches a
``NullHandler`` to its own namespace so that importing :mod:`repro` is silent
by default.  :func:`enable_console_logging` is what the CLI and examples call
to get human-readable progress output.
"""

from __future__ import annotations

import logging
import sys
from typing import Optional

__all__ = ["get_logger", "enable_console_logging"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: Optional[str] = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def enable_console_logging(level: int = logging.INFO, stream=None) -> logging.Handler:
    """Attach a stream handler to the ``repro`` logger namespace.

    Returns the handler so tests can detach it again.  Calling this twice
    replaces the previous console handler instead of duplicating output.
    """
    logger = logging.getLogger(_ROOT_NAME)
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_console", False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(
        logging.Formatter("[%(asctime)s] %(levelname)s %(name)s: %(message)s", "%H:%M:%S")
    )
    handler._repro_console = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.setLevel(level)
    return handler
