"""Input validation helpers.

These are intentionally strict: BCPNN's probabilistic learning rule assumes
inputs are probability distributions within each hypercolumn, so silent
acceptance of malformed data leads to NaN weights far from the call site.
All validators raise :class:`repro.exceptions.DataError` or
:class:`repro.exceptions.ConfigurationError` with actionable messages.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import ConfigurationError, DataError

__all__ = [
    "check_array",
    "check_positive_int",
    "check_fraction",
    "check_probability_matrix",
    "check_one_hot",
    "check_labels",
    "check_same_length",
    "check_sparse_mode",
]


def check_sparse_mode(value, name: str = "sparse") -> str:
    """Validate a block-sparse execution mode string ("auto"/"on"/"off").

    The single validation point shared by the schedule/plan/config
    dataclasses; boolean convenience forms are handled one level up by
    :func:`repro.core.execution.normalize_sparse_mode`.
    """
    if value not in ("auto", "on", "off"):
        raise ConfigurationError(
            f"{name} must be 'auto', 'on' or 'off', got {value!r}"
        )
    return value


def check_array(
    value,
    *,
    name: str = "array",
    ndim: Optional[int] = None,
    dtype=np.float64,
    allow_empty: bool = False,
    copy: bool = False,
) -> np.ndarray:
    """Coerce ``value`` to a contiguous ndarray and validate its shape.

    Parameters
    ----------
    value:
        Array-like input.
    name:
        Name used in error messages.
    ndim:
        Required dimensionality, or ``None`` to accept any.
    dtype:
        Target dtype (``None`` keeps the input dtype).
    allow_empty:
        Whether zero-sized arrays are acceptable.
    copy:
        Force a copy even when the input is already a conforming ndarray.
    """
    try:
        arr = np.array(value, dtype=dtype, copy=copy) if copy else np.asarray(value, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise DataError(f"{name} could not be converted to an ndarray: {exc}") from exc
    if ndim is not None and arr.ndim != ndim:
        raise DataError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if not allow_empty and arr.size == 0:
        raise DataError(f"{name} must not be empty")
    if arr.dtype.kind == "f" and not np.all(np.isfinite(arr)):
        raise DataError(f"{name} contains NaN or infinite values")
    return np.ascontiguousarray(arr)


def check_positive_int(value, name: str, *, minimum: int = 1) -> int:
    """Validate an integral hyper-parameter such as ``n_hypercolumns``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_fraction(
    value, name: str, *, inclusive_low: bool = True, inclusive_high: bool = True
) -> float:
    """Validate a fraction-style hyper-parameter in ``[0, 1]``."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"{name} must be a float in [0, 1], got {value!r}") from exc
    low_ok = value >= 0.0 if inclusive_low else value > 0.0
    high_ok = value <= 1.0 if inclusive_high else value < 1.0
    if not (low_ok and high_ok) or not np.isfinite(value):
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value}")
    return value


def check_probability_matrix(
    activations: np.ndarray,
    hypercolumn_sizes: Sequence[int],
    *,
    name: str = "activations",
    atol: float = 1e-6,
) -> np.ndarray:
    """Validate that each hypercolumn block of each row sums to one.

    ``activations`` has shape ``(n_samples, sum(hypercolumn_sizes))`` and is
    interpreted as a concatenation of per-hypercolumn probability
    distributions (the output of a modular softmax, or a one-hot encoding).
    """
    arr = check_array(activations, name=name, ndim=2)
    total = int(sum(hypercolumn_sizes))
    if arr.shape[1] != total:
        raise DataError(
            f"{name} has {arr.shape[1]} columns but hypercolumn sizes sum to {total}"
        )
    if np.any(arr < -atol):
        raise DataError(f"{name} contains negative probabilities")
    offset = 0
    for idx, size in enumerate(hypercolumn_sizes):
        block = arr[:, offset : offset + size]
        sums = block.sum(axis=1)
        if not np.allclose(sums, 1.0, atol=max(atol, 1e-4)):
            bad = int(np.argmax(np.abs(sums - 1.0)))
            raise DataError(
                f"{name}: hypercolumn {idx} does not sum to 1 for row {bad} "
                f"(sum={sums[bad]:.6f})"
            )
        offset += size
    return arr


def check_one_hot(encoded: np.ndarray, n_bins: int, *, name: str = "encoded") -> np.ndarray:
    """Validate a one-hot encoded matrix with uniform block size ``n_bins``."""
    arr = check_array(encoded, name=name, ndim=2)
    if arr.shape[1] % n_bins != 0:
        raise DataError(
            f"{name} has {arr.shape[1]} columns which is not a multiple of n_bins={n_bins}"
        )
    n_features = arr.shape[1] // n_bins
    reshaped = arr.reshape(arr.shape[0], n_features, n_bins)
    if not np.array_equal(reshaped.sum(axis=2), np.ones((arr.shape[0], n_features))):
        raise DataError(f"{name} is not one-hot: some blocks do not sum to exactly 1")
    if not np.all((arr == 0.0) | (arr == 1.0)):
        raise DataError(f"{name} is not one-hot: values other than 0/1 present")
    return arr


def check_labels(labels, n_classes: Optional[int] = None, *, name: str = "labels") -> np.ndarray:
    """Validate an integer class-label vector."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise DataError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise DataError(f"{name} must not be empty")
    if arr.dtype.kind == "f":
        if not np.all(arr == np.floor(arr)):
            raise DataError(f"{name} must contain integers")
        arr = arr.astype(np.int64)
    elif arr.dtype.kind in "iu":
        arr = arr.astype(np.int64)
    elif arr.dtype.kind == "b":
        arr = arr.astype(np.int64)
    else:
        raise DataError(f"{name} has unsupported dtype {arr.dtype}")
    if np.any(arr < 0):
        raise DataError(f"{name} must be non-negative class indices")
    if n_classes is not None and np.any(arr >= n_classes):
        raise DataError(f"{name} contains a class index >= n_classes={n_classes}")
    return arr


def check_same_length(*arrays, names: Optional[Sequence[str]] = None) -> Tuple[np.ndarray, ...]:
    """Validate that all arrays share their first dimension."""
    if not arrays:
        return ()
    lengths = [np.asarray(a).shape[0] for a in arrays]
    if len(set(lengths)) != 1:
        label = names if names is not None else [f"array{i}" for i in range(len(arrays))]
        detail = ", ".join(f"{n}={l}" for n, l in zip(label, lengths))
        raise DataError(f"arrays have mismatched lengths: {detail}")
    return tuple(np.asarray(a) for a in arrays)
