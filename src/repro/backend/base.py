"""Backend interface.

A backend supplies the numerical primitives of the BCPNN training loop.  The
split mirrors StreamBrain: layers own state (traces, masks, weights) and the
backend owns *how* the arithmetic is executed.  Every backend must be
numerically equivalent to :class:`repro.backend.numpy_backend.NumpyBackend`
up to its declared precision — a property the test-suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.exceptions import BackendError

__all__ = ["Backend", "KernelStatistics"]


@dataclass
class KernelStatistics:
    """Operation counters maintained by backends (used by cost reports)."""

    forward_calls: int = 0
    statistics_calls: int = 0
    weight_updates: int = 0
    elements_processed: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "KernelStatistics") -> "KernelStatistics":
        merged = KernelStatistics(
            forward_calls=self.forward_calls + other.forward_calls,
            statistics_calls=self.statistics_calls + other.statistics_calls,
            weight_updates=self.weight_updates + other.weight_updates,
            elements_processed=self.elements_processed + other.elements_processed,
            extra=dict(self.extra),
        )
        for key, value in other.extra.items():
            merged.extra[key] = merged.extra.get(key, 0.0) + value
        return merged


class Backend:
    """Abstract compute backend.

    Subclasses must implement :meth:`forward`, :meth:`batch_statistics` and
    :meth:`traces_to_weights`.  ``supports_parallel``/``precision`` are
    advisory metadata used by reports and tests.
    """

    #: Human-readable backend name (used by the registry and reports).
    name: str = "abstract"
    #: Working precision of the backend ("float64", "float32", "float16", "posit16").
    precision: str = "float64"
    #: Whether the backend distributes work over multiple workers.
    supports_parallel: bool = False

    def __init__(self) -> None:
        self.stats = KernelStatistics()

    # ------------------------------------------------------------ kernels
    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        sparse=None,
    ) -> np.ndarray:
        """Masked support GEMM followed by per-hypercolumn softmax.

        ``sparse`` is an optional :class:`repro.kernels.SparseWeights`
        bundle (compiled mask layout + packed weight slabs); backends with a
        block-sparse fast path serve it with gather-GEMMs, everyone else
        falls back to scattering the slabs into the dense effective matrix
        (see :meth:`_sparse_effective`) — always correct, never required.
        """
        raise NotImplementedError

    def batch_statistics(
        self, x: np.ndarray, a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch-mean marginals and co-activation matrix for the trace update."""
        raise NotImplementedError

    def traces_to_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        trace_floor: float = 1e-12,
        out_weights: Optional[np.ndarray] = None,
        out_bias: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Convert probability traces into weights and biases.

        ``out_weights``/``out_bias`` receive the results when given so the
        per-batch weight refresh can reuse the layer's persistent buffers.
        """
        raise NotImplementedError

    # ----------------------------------------------------- fused primitives
    #
    # The streaming execution engine (:mod:`repro.engine`) drives training
    # through these three entry points.  ``workspace`` is duck-typed: any
    # object exposing the preallocated buffers of
    # :class:`repro.engine.LayerWorkspace` (``support``, ``activations``,
    # ``masked_weights``, ``mean_x``, ``mean_a``, ``mean_outer``) works.
    # The base implementations compose the three abstract kernels, so every
    # backend gets a numerically-faithful fused path for free; subclasses
    # override them to exploit buffer reuse (NumPy), chunked parallelism
    # (parallel) or rank sharding (distributed).
    #
    # Two workspace conventions support the pipelined engine:
    #
    # * masked-product cache — a workspace-aware backend that computes the
    #   ``weights * mask`` product into ``workspace.masked_weights`` must
    #   honour ``workspace.masked_valid``: when the flag is set the cached
    #   product is current (the engine clears it whenever the weight buffer
    #   is refreshed or the mask object changes) and the multiply is
    #   skipped; after writing the product the backend sets the flag.
    #   Backends that never read ``masked_weights`` simply leave the flag
    #   alone (they recompute, which is always correct).
    # * scaled-mean convention — after ``update_traces`` with a workspace,
    #   ``workspace.mean_x``/``mean_a`` hold the *taupdt-scaled* batch means
    #   (``kernels.ema_update`` scales its inputs in place); the engine's
    #   stale-weights accounting reads them to accumulate the applied trace
    #   drift.

    def forward_into(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        out: Optional[np.ndarray] = None,
        workspace=None,
        sparse=None,
    ) -> np.ndarray:
        """``out=``-style forward: hidden activations written into ``out``.

        The default implementation delegates to :meth:`forward` and copies;
        workspace-aware backends override it to compute in place.
        """
        activations = self.forward(
            x, weights, bias, mask_expanded, hidden_sizes, bias_gain, sparse=sparse
        )
        if out is None:
            return activations
        np.copyto(out, activations)
        return out

    def _sparse_effective(self, sparse, workspace=None) -> np.ndarray:
        """Dense ``weights * mask`` product scattered from packed slabs.

        The correctness fallback for backends without a gather-GEMM fast
        path: silent entries are exactly ``0.0``, elementwise identical to
        the dense path's masked product, so the ordinary dense GEMM over the
        result is valid.  With a workspace the scatter is cached in
        ``masked_weights`` behind the ``masked_valid`` flag (the engine
        clears it whenever the packed buffer or the layout changes).
        """
        layout = sparse.layout
        if workspace is not None:
            if not getattr(workspace, "masked_valid", False):
                kernels.scatter_packed(sparse.blocks, layout, workspace.masked_weights)
                workspace.masked_valid = True
            return workspace.masked_weights
        out = np.empty((layout.n_input, layout.n_hidden), dtype=np.float64)
        return kernels.scatter_packed(sparse.blocks, layout, out)

    def pack_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        layout,
        trace_floor: float = 1e-12,
        out_blocks=None,
        out_bias: Optional[np.ndarray] = None,
    ):
        """Sparse trace->weight refresh into packed per-block slabs.

        The sparse counterpart of :meth:`traces_to_weights`: only the active
        rows of each hidden block are converted (identical scalar operations
        per entry, so packed values are bitwise equal to gathering the dense
        weight matrix).  Backends with a working-precision contract override
        this to quantise the slabs.
        """
        self.stats.weight_updates += 1
        return kernels.pack_traces_to_weights(
            p_i, p_j, p_ij, layout, trace_floor, out_blocks=out_blocks, out_bias=out_bias
        )

    def update_traces(
        self,
        x: np.ndarray,
        a: np.ndarray,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        taupdt: float,
        workspace=None,
    ) -> None:
        """Batch statistics + in-place EMA trace update in one dispatch.

        Mutates the trace arrays directly (``p <- (1-taupdt) p + taupdt mean``).
        """
        mean_x, mean_a, mean_outer = self.batch_statistics(x, a)
        kernels.ema_update(p_i, p_j, p_ij, mean_x, mean_a, mean_outer, taupdt)
        if workspace is not None:
            # Publish the taupdt-scaled means (ema_update scaled them in
            # place) for the engine's stale-weights drift accounting.
            np.copyto(workspace.mean_x, mean_x, casting="unsafe")
            np.copyto(workspace.mean_a, mean_a, casting="unsafe")

    def fused_update(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        taupdt: float,
        activity_fn: Optional[Callable[[np.ndarray], np.ndarray]] = None,
        workspace=None,
        sparse=None,
    ) -> np.ndarray:
        """One fused training step: forward + batch statistics + trace update.

        ``activity_fn`` maps the forward activations to the training activity
        (the layer's competition rule); ``None`` trains on the activations
        themselves.  Returns the forward activations — a view into the
        workspace when one is supplied, valid until the next dispatch.

        On a sparse dispatch only the forward side goes through the packed
        slabs; the statistics/EMA stay dense because the joint trace must
        keep silent-connection statistics for structural plasticity.
        """
        out = None
        if workspace is not None:
            out = workspace.activations[: np.asarray(x).shape[0]]
        activations = self.forward_into(
            x, weights, bias, mask_expanded, hidden_sizes, bias_gain,
            out=out, workspace=workspace, sparse=sparse,
        )
        activity = activations if activity_fn is None else activity_fn(activations)
        self.update_traces(x, activity, p_i, p_j, p_ij, taupdt, workspace=workspace)
        return activations

    # --------------------------------------------------------------- misc
    def prepare_array(self, array: np.ndarray) -> np.ndarray:
        """Hook for backends that require a particular dtype/layout."""
        return np.ascontiguousarray(array)

    def synchronize(self) -> None:
        """Wait for asynchronous work (no-op for synchronous backends)."""

    def close(self) -> None:
        """Release worker pools or device handles."""

    def __enter__(self) -> "Backend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(name={self.name!r}, precision={self.precision!r})"

    # ------------------------------------------------------------- helpers
    def _require_2d(self, array: np.ndarray, name: str) -> np.ndarray:
        array = np.asarray(array)
        if array.ndim != 2:
            raise BackendError(f"{self.name} backend: {name} must be 2-D, got {array.shape}")
        return array
