"""Reference NumPy/BLAS backend.

This is the numerically authoritative implementation: every other backend is
tested against it.  The heavy operations (masked support GEMM, co-activation
outer product) dispatch to BLAS through ``numpy.matmul``, which is exactly
the "expressed as a GEMM operation that allows using optimized BLAS
libraries" formulation from Section II-B of the paper.

The fused entry points (:meth:`NumpyBackend.forward_into`,
:meth:`NumpyBackend.update_traces`) are workspace-aware: when the execution
engine passes a :class:`repro.engine.LayerWorkspace`, every large
intermediate (masked weights, support, activations, co-activation outer
product) is computed into a preallocated buffer, so the steady-state
training loop performs zero per-batch allocations of layer-sized arrays.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.backend.base import Backend

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Single-process, double-precision backend built on NumPy."""

    name = "numpy"
    precision = "float64"
    supports_parallel = False

    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        sparse=None,
    ) -> np.ndarray:
        if sparse is not None:
            return self.forward_into(
                x, weights, bias, mask_expanded, hidden_sizes, bias_gain, sparse=sparse
            )
        x = self._require_2d(x, "x")
        support = kernels.compute_support(x, weights, bias, mask_expanded, bias_gain)
        activations = kernels.hidden_activations(support, hidden_sizes)
        self.stats.forward_calls += 1
        self.stats.elements_processed += int(x.shape[0]) * int(weights.shape[1])
        return activations

    def forward_into(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        out: Optional[np.ndarray] = None,
        workspace=None,
        sparse=None,
    ) -> np.ndarray:
        x = self._require_2d(x, "x")
        n_rows = x.shape[0]
        if sparse is not None:
            # Block-sparse fast path: one gather-GEMM per hidden hypercolumn
            # over the packed slabs — only the FLOPs the mask requires.
            support_buf = workspace.support[:n_rows] if workspace is not None else None
            gather = workspace.gather_scratch() if workspace is not None else None
            if out is None and workspace is not None:
                out = workspace.activations[:n_rows]
            support = kernels.compute_support_sparse(
                x, sparse.blocks, bias, sparse.layout, bias_gain,
                out=support_buf, gather=gather,
            )
            activations = kernels.hidden_activations(support, hidden_sizes, out=out)
            self.stats.forward_calls += 1
            self.stats.elements_processed += int(n_rows) * int(sparse.layout.n_hidden)
            return activations
        support_buf = None
        masked_buf = None
        reuse_masked = False
        if workspace is not None:
            support_buf = workspace.support[:n_rows]
            masked_buf = workspace.masked_weights if mask_expanded is not None else None
            reuse_masked = masked_buf is not None and bool(
                getattr(workspace, "masked_valid", False)
            )
            if out is None:
                out = workspace.activations[:n_rows]
        support = kernels.compute_support(
            x, weights, bias, mask_expanded, bias_gain,
            out=support_buf, masked_scratch=masked_buf, reuse_masked=reuse_masked,
        )
        if masked_buf is not None:
            workspace.masked_valid = True
        activations = kernels.hidden_activations(support, hidden_sizes, out=out)
        self.stats.forward_calls += 1
        self.stats.elements_processed += int(n_rows) * int(weights.shape[1])
        return activations

    def batch_statistics(
        self, x: np.ndarray, a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = self._require_2d(x, "x")
        a = self._require_2d(a, "a")
        result = kernels.batch_outer_product(x, a)
        self.stats.statistics_calls += 1
        self.stats.elements_processed += int(x.shape[1]) * int(a.shape[1])
        return result

    def update_traces(
        self,
        x: np.ndarray,
        a: np.ndarray,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        taupdt: float,
        workspace=None,
    ) -> None:
        x = self._require_2d(x, "x")
        a = self._require_2d(a, "a")
        out_x = out_a = out_outer = None
        if workspace is not None:
            out_x, out_a, out_outer = workspace.mean_x, workspace.mean_a, workspace.mean_outer
        mean_x, mean_a, mean_outer = kernels.batch_outer_product(
            x, a, out_x=out_x, out_a=out_a, out_outer=out_outer
        )
        self.stats.statistics_calls += 1
        self.stats.elements_processed += int(x.shape[1]) * int(a.shape[1])
        kernels.ema_update(p_i, p_j, p_ij, mean_x, mean_a, mean_outer, taupdt)

    def traces_to_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        trace_floor: float = 1e-12,
        out_weights: Optional[np.ndarray] = None,
        out_bias: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self.stats.weight_updates += 1
        return kernels.traces_to_weights(
            p_i, p_j, p_ij, trace_floor, out_weights=out_weights, out_bias=out_bias
        )
