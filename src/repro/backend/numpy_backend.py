"""Reference NumPy/BLAS backend.

This is the numerically authoritative implementation: every other backend is
tested against it.  The heavy operations (masked support GEMM, co-activation
outer product) dispatch to BLAS through ``numpy.matmul``, which is exactly
the "expressed as a GEMM operation that allows using optimized BLAS
libraries" formulation from Section II-B of the paper.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.backend.base import Backend
from repro.core import kernels

__all__ = ["NumpyBackend"]


class NumpyBackend(Backend):
    """Single-process, double-precision backend built on NumPy."""

    name = "numpy"
    precision = "float64"
    supports_parallel = False

    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
    ) -> np.ndarray:
        x = self._require_2d(x, "x")
        support = kernels.compute_support(x, weights, bias, mask_expanded, bias_gain)
        activations = kernels.hidden_activations(support, hidden_sizes)
        self.stats.forward_calls += 1
        self.stats.elements_processed += int(x.shape[0]) * int(weights.shape[1])
        return activations

    def batch_statistics(
        self, x: np.ndarray, a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = self._require_2d(x, "x")
        a = self._require_2d(a, "a")
        result = kernels.batch_outer_product(x, a)
        self.stats.statistics_calls += 1
        self.stats.elements_processed += int(x.shape[1]) * int(a.shape[1])
        return result

    def traces_to_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        trace_floor: float = 1e-12,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self.stats.weight_updates += 1
        return kernels.traces_to_weights(p_i, p_j, p_ij, trace_floor)
