"""Reduced-precision backend (FPGA / posit exploration stand-in).

StreamBrain's FPGA backend exists to explore "reduced/different numerical
representation (e.g., Posits)" (Section III-A).  Without an FPGA we simulate
the numerical effect: every kernel runs the reference computation and then
rounds its results to a reduced representation —

* ``float32`` / ``float16`` — straightforward IEEE rounding;
* ``posit16`` — a software model of a posit(16, 1)-like tapered format:
  values are rounded to a mantissa whose width shrinks as the magnitude
  moves away from 1.0, mimicking posits' accuracy profile.

The precision ablation benchmark (E10 in DESIGN.md) trains the same network
under each representation and reports the accuracy/AUC degradation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.backend.base import Backend
from repro.backend.numpy_backend import NumpyBackend
from repro.exceptions import BackendError

__all__ = ["LowPrecisionBackend", "posit_round"]

_SUPPORTED = ("float64", "float32", "float16", "posit16")


def posit_round(values: np.ndarray, nbits: int = 16, es: int = 1) -> np.ndarray:
    """Round values to a posit(nbits, es)-style tapered precision.

    This is a numerical model, not a bit-exact posit codec: for each value we
    compute the regime length implied by its exponent, derive the number of
    mantissa bits remaining, and round the mantissa to that many bits.  The
    key posit property — maximum accuracy near ±1, tapering toward the
    extremes — is preserved, which is what matters for studying its effect on
    BCPNN training.
    """
    if nbits < 4:
        raise BackendError("posit nbits must be >= 4")
    if es < 0:
        raise BackendError("posit es must be non-negative")
    arr = np.asarray(values, dtype=np.float64)
    out = np.zeros_like(arr)
    finite = np.isfinite(arr) & (arr != 0.0)
    if not np.any(finite):
        return out
    vals = arr[finite]
    useed_exp = 2**es  # each regime step scales by 2**useed_exp
    exponent = np.floor(np.log2(np.abs(vals)))
    regime = np.floor(exponent / useed_exp)
    # Bits consumed: sign (1) + regime (|regime|+2) + exponent field (es).
    regime_bits = np.abs(regime) + 2
    mantissa_bits = np.maximum(nbits - 1 - regime_bits - es, 0)
    # Round mantissa: value = sign * 2**exponent * (1 + frac); quantise frac.
    scale = np.power(2.0, exponent)
    frac = np.abs(vals) / scale - 1.0
    step = np.power(2.0, -np.maximum(mantissa_bits, 1))
    frac_q = np.round(frac / step) * step
    frac_q = np.where(mantissa_bits == 0, 0.0, frac_q)
    rounded = np.sign(vals) * scale * (1.0 + frac_q)
    # Clamp to the representable posit range.
    max_mag = float(2.0 ** (useed_exp * (nbits - 2)))
    min_mag = 1.0 / max_mag
    rounded = np.clip(np.abs(rounded), min_mag, max_mag) * np.sign(rounded)
    out[finite] = rounded
    return out.reshape(arr.shape)


class LowPrecisionBackend(Backend):
    """Wrap the reference backend and quantise every kernel output."""

    supports_parallel = False

    def __init__(self, precision: str = "float16") -> None:
        super().__init__()
        if precision not in _SUPPORTED:
            raise BackendError(
                f"unsupported precision {precision!r}; choose one of {_SUPPORTED}"
            )
        self.precision = precision
        self.name = f"lowprec-{precision}"
        self._reference = NumpyBackend()

    # ---------------------------------------------------------- quantisers
    def quantize(self, array: np.ndarray) -> np.ndarray:
        """Round an array to the backend's working precision (as float64)."""
        arr = np.asarray(array, dtype=np.float64)
        if self.precision == "float64":
            return arr
        if self.precision == "float32":
            return arr.astype(np.float32).astype(np.float64)
        if self.precision == "float16":
            # float16 overflows at 65504; clamp first to avoid inf weights.
            clipped = np.clip(arr, -65000.0, 65000.0)
            return clipped.astype(np.float16).astype(np.float64)
        return posit_round(arr, nbits=16, es=1)

    def prepare_array(self, array: np.ndarray) -> np.ndarray:
        return self.quantize(np.ascontiguousarray(array))

    # ------------------------------------------------------------- kernels
    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        sparse=None,
    ) -> np.ndarray:
        return self.forward_into(
            x, weights, bias, mask_expanded, hidden_sizes, bias_gain, sparse=sparse
        )

    def forward_into(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        out: Optional[np.ndarray] = None,
        workspace=None,
        sparse=None,
    ) -> np.ndarray:
        # The quantisation of the operands allocates by construction (this
        # backend simulates number formats, it is not a perf path), but the
        # reference forward still streams through the shared workspace.
        # Sparse slabs are re-quantised at dispatch — idempotent for slabs
        # this backend packed itself, and it upholds the precision contract
        # for slabs packed elsewhere (mirroring the dense path, which
        # quantises the weight matrix at every dispatch).
        if sparse is not None:
            from repro import kernels as _kernels

            sparse = _kernels.SparseWeights(
                sparse.layout, [self.quantize(b) for b in sparse.blocks], sparse.flat
            )
        activations = self._reference.forward_into(
            self.quantize(x),
            None if sparse is not None else self.quantize(weights),
            self.quantize(bias),
            mask_expanded,
            hidden_sizes,
            bias_gain,
            out=out,
            workspace=workspace,
            sparse=sparse,
        )
        self.stats.forward_calls += 1
        n_hidden = int(
            sparse.layout.n_hidden if sparse is not None else np.asarray(weights).shape[1]
        )
        self.stats.elements_processed += int(np.asarray(x).shape[0]) * n_hidden
        # Re-normalise after quantisation so each hypercolumn still sums to 1.
        quantised = self.quantize(activations)
        if out is not None and quantised is not out:
            np.copyto(out, quantised)
            quantised = out
        sizes = np.asarray(hidden_sizes, dtype=np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        for b in range(sizes.shape[0]):
            lo, hi = offsets[b], offsets[b + 1]
            block_sum = quantised[:, lo:hi].sum(axis=1, keepdims=True)
            block_sum[block_sum <= 0] = 1.0
            quantised[:, lo:hi] /= block_sum
        return quantised

    def batch_statistics(
        self, x: np.ndarray, a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        mean_x, mean_a, mean_outer = self._reference.batch_statistics(
            self.quantize(x), self.quantize(a)
        )
        self.stats.statistics_calls += 1
        return self.quantize(mean_x), self.quantize(mean_a), self.quantize(mean_outer)

    def pack_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        layout,
        trace_floor: float = 1e-12,
        out_blocks=None,
        out_bias: Optional[np.ndarray] = None,
    ):
        """Packed sparse refresh with the backend's precision contract.

        Each slab entry is the quantisation of the value the dense
        :meth:`traces_to_weights` + mask would produce for that connection,
        so the sparse path matches the dense low-precision path exactly.
        """
        blocks, bias = self._reference.pack_weights(
            p_i, p_j, p_ij, layout, trace_floor, out_blocks=out_blocks, out_bias=out_bias
        )
        self.stats.weight_updates += 1
        for slab in blocks:
            slab[...] = self.quantize(slab)
        quant_b = self.quantize(bias)
        if quant_b is not bias:
            np.copyto(bias, quant_b)
        return blocks, bias

    def traces_to_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        trace_floor: float = 1e-12,
        out_weights: Optional[np.ndarray] = None,
        out_bias: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        weights, bias = self._reference.traces_to_weights(
            p_i, p_j, p_ij, trace_floor, out_weights=out_weights, out_bias=out_bias
        )
        self.stats.weight_updates += 1
        quant_w, quant_b = self.quantize(weights), self.quantize(bias)
        if out_weights is not None and quant_w is not out_weights:
            np.copyto(out_weights, quant_w)
            quant_w = out_weights
        if out_bias is not None and quant_b is not out_bias:
            np.copyto(out_bias, quant_b)
            quant_b = out_bias
        return quant_w, quant_b
