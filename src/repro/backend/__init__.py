"""Compute backends.

StreamBrain ships hand-tuned OpenMP/SIMD, MPI, CUDA and FPGA backends behind
one kernel interface.  None of those targets exist in this environment, so
this package provides:

* :class:`~repro.backend.numpy_backend.NumpyBackend` — the reference
  BLAS-backed implementation (what StreamBrain calls the "numpy" backend).
* :class:`~repro.backend.parallel.ParallelBackend` — batch-parallel trace
  accumulation over worker processes with shared-memory arrays, standing in
  for the OpenMP/threaded CPU backend.
* :mod:`~repro.backend.distributed` — the data-parallel layer over
  :mod:`repro.comm`: a rank-sharded simulation backend plus the SPMD
  :class:`~repro.backend.distributed.DistributedTrainer` that runs real
  thread/process/MPI ranks, standing in for the MPI backend.
* :class:`~repro.backend.lowprec.LowPrecisionBackend` — float16 / posit-style
  quantisation wrapper, standing in for the FPGA reduced-precision backend.

Backends are obtained by name through :func:`get_backend`.
"""

from repro.backend.base import Backend, KernelStatistics
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.lowprec import LowPrecisionBackend, posit_round
from repro.backend.parallel import ParallelBackend
from repro.backend.registry import get_backend, register_backend, list_backends
from repro.backend.distributed import (
    DistributedBackend,
    DistributedTrainer,
    LocalComm,
    split_ranks,
)

__all__ = [
    "Backend",
    "KernelStatistics",
    "NumpyBackend",
    "ParallelBackend",
    "LowPrecisionBackend",
    "DistributedBackend",
    "posit_round",
    "get_backend",
    "register_backend",
    "list_backends",
    "LocalComm",
    "DistributedTrainer",
    "split_ranks",
]
