"""Backend registry: obtain compute backends by name.

Mirrors StreamBrain's backend selection (``numpy``, ``openmp``, ``mpi``,
``cuda``, ``fpga``); the names here map to the simulated equivalents
available in this environment (see the package docstring).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Union

from repro.backend.base import Backend
from repro.backend.distributed import DistributedBackend
from repro.backend.lowprec import LowPrecisionBackend
from repro.backend.numpy_backend import NumpyBackend
from repro.backend.parallel import ParallelBackend
from repro.exceptions import BackendError

__all__ = ["register_backend", "get_backend", "list_backends"]

BackendFactory = Callable[..., Backend]

_REGISTRY: Dict[str, BackendFactory] = {
    "numpy": NumpyBackend,
    "parallel": ParallelBackend,
    "distributed": DistributedBackend,
    # Aliases matching the StreamBrain backend names they stand in for.
    "openmp": ParallelBackend,
    "mpi": DistributedBackend,
    "float32": lambda **kw: LowPrecisionBackend("float32"),
    "float16": lambda **kw: LowPrecisionBackend("float16"),
    "posit16": lambda **kw: LowPrecisionBackend("posit16"),
    "fpga": lambda **kw: LowPrecisionBackend("posit16"),
}


def register_backend(name: str, factory: BackendFactory, overwrite: bool = False) -> None:
    """Register a backend factory under ``name``."""
    if not isinstance(name, str) or not name:
        raise BackendError("backend name must be a non-empty string")
    if not callable(factory):
        raise BackendError("backend factory must be callable")
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise BackendError(f"backend '{name}' is already registered")
    _REGISTRY[key] = factory


def get_backend(backend: Union[str, Backend, None] = None, **kwargs) -> Backend:
    """Resolve a backend instance from a name, an instance, or ``None``.

    ``None`` returns the default :class:`NumpyBackend`.  Passing an existing
    :class:`Backend` instance returns it unchanged (so layers can share one).
    """
    if backend is None:
        return NumpyBackend()
    if isinstance(backend, Backend):
        return backend
    if isinstance(backend, str):
        key = backend.lower()
        if key not in _REGISTRY:
            raise BackendError(
                f"unknown backend '{backend}'; available: {sorted(_REGISTRY)}"
            )
        return _REGISTRY[key](**kwargs)
    raise BackendError(
        f"backend must be a name, a Backend instance or None, got {type(backend).__name__}"
    )


def list_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)
