"""Shared-memory batch-parallel backend.

Stands in for StreamBrain's hand-coded OpenMP/SIMD CPU backend.  The batch
dimension is split into chunks that are processed concurrently by a thread
pool: NumPy releases the GIL inside BLAS matmuls and large ufunc loops, so
the chunks genuinely execute in parallel on multicore machines while sharing
the weight/trace arrays with zero copies (the same shared-memory model the
OpenMP backend uses).

The backend is *numerically identical* to the NumPy reference: chunked
softmax is independent per row, and the co-activation statistics are
combined as exact weighted sums of per-chunk sums.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.backend.base import Backend
from repro.exceptions import BackendError
from repro.utils.arrays import split_into_chunks

__all__ = ["ParallelBackend", "default_worker_count"]


def default_worker_count() -> int:
    """Worker count default: all cores, overridable via ``REPRO_NUM_WORKERS``."""
    env = os.environ.get("REPRO_NUM_WORKERS")
    if env:
        try:
            value = int(env)
        except ValueError as exc:
            raise BackendError(f"REPRO_NUM_WORKERS must be an integer, got {env!r}") from exc
        if value <= 0:
            raise BackendError("REPRO_NUM_WORKERS must be positive")
        return value
    return max(1, os.cpu_count() or 1)


class ParallelBackend(Backend):
    """Thread-parallel backend chunking work over the batch dimension.

    Parameters
    ----------
    n_workers:
        Number of worker threads (default: CPU count or ``REPRO_NUM_WORKERS``).
    min_chunk:
        Minimum rows per chunk; small batches fall back to single-threaded
        execution to avoid pool overhead.
    """

    name = "parallel"
    precision = "float64"
    supports_parallel = True

    def __init__(self, n_workers: Optional[int] = None, min_chunk: int = 64) -> None:
        super().__init__()
        self.n_workers = int(n_workers) if n_workers is not None else default_worker_count()
        if self.n_workers <= 0:
            raise BackendError("n_workers must be positive")
        if min_chunk <= 0:
            raise BackendError("min_chunk must be positive")
        self.min_chunk = int(min_chunk)
        self._pool: Optional[ThreadPoolExecutor] = None

    # ----------------------------------------------------------- pool mgmt
    @property
    def pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.n_workers, thread_name_prefix="repro-backend"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def _chunks(self, n_rows: int) -> List[Tuple[int, int]]:
        if n_rows < 2 * self.min_chunk or self.n_workers == 1:
            return [(0, n_rows)]
        n_chunks = min(self.n_workers, max(1, n_rows // self.min_chunk))
        return [c for c in split_into_chunks(n_rows, n_chunks) if c[1] > c[0]]

    # ------------------------------------------------------------- kernels
    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        sparse=None,
    ) -> np.ndarray:
        return self.forward_into(
            x, weights, bias, mask_expanded, hidden_sizes, bias_gain, sparse=sparse
        )

    def forward_into(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        out: Optional[np.ndarray] = None,
        workspace=None,
        sparse=None,
    ) -> np.ndarray:
        x = self._require_2d(x, "x")
        n_rows = x.shape[0]
        chunks = self._chunks(n_rows)
        self.stats.forward_calls += 1
        if workspace is not None and out is None:
            out = workspace.activations[:n_rows]
        if sparse is not None:
            # Block-sparse path, chunked over the batch rows: each worker
            # gathers its own contiguous row block and runs the per-block
            # gather-GEMMs, sharing the read-only packed slabs zero-copy.
            self.stats.elements_processed += int(n_rows) * int(sparse.layout.n_hidden)
            if len(chunks) == 1:
                support_buf = workspace.support[:n_rows] if workspace is not None else None
                gather = workspace.gather_scratch() if workspace is not None else None
                support = kernels.compute_support_sparse(
                    x, sparse.blocks, bias, sparse.layout, bias_gain,
                    out=support_buf, gather=gather,
                )
                return kernels.hidden_activations(support, hidden_sizes, out=out)
            if out is None:
                out = np.empty((n_rows, sparse.layout.n_hidden), dtype=np.float64)

            def run_sparse(chunk: Tuple[int, int]) -> None:
                lo, hi = chunk
                support = kernels.compute_support_sparse(
                    x[lo:hi], sparse.blocks, bias, sparse.layout, bias_gain
                )
                kernels.hidden_activations(support, hidden_sizes, out=out[lo:hi])

            list(self.pool.map(run_sparse, chunks))
            return out
        self.stats.elements_processed += int(n_rows) * int(weights.shape[1])
        reuse_masked = (
            workspace is not None
            and mask_expanded is not None
            and bool(getattr(workspace, "masked_valid", False))
        )
        if len(chunks) == 1:
            support_buf = workspace.support[:n_rows] if workspace is not None else None
            masked_buf = (
                workspace.masked_weights
                if workspace is not None and mask_expanded is not None
                else None
            )
            support = kernels.compute_support(
                x, weights, bias, mask_expanded, bias_gain,
                out=support_buf, masked_scratch=masked_buf, reuse_masked=reuse_masked,
            )
            if masked_buf is not None:
                workspace.masked_valid = True
            return kernels.hidden_activations(support, hidden_sizes, out=out)
        # Pre-mask once; workers share the read-only result.
        if mask_expanded is not None:
            if workspace is not None:
                if reuse_masked:
                    effective = workspace.masked_weights
                else:
                    effective = np.multiply(weights, mask_expanded, out=workspace.masked_weights)
                    workspace.masked_valid = True
            else:
                effective = weights * mask_expanded
        else:
            effective = weights
        if out is None:
            out = np.empty((n_rows, weights.shape[1]), dtype=np.float64)

        def run(chunk: Tuple[int, int]) -> None:
            lo, hi = chunk
            support = bias_gain * bias[None, :] + x[lo:hi] @ effective
            kernels.hidden_activations(support, hidden_sizes, out=out[lo:hi])

        list(self.pool.map(run, chunks))
        return out

    def batch_statistics(
        self, x: np.ndarray, a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = self._require_2d(x, "x")
        a = self._require_2d(a, "a")
        if x.shape[0] != a.shape[0]:
            raise BackendError("x and a must have the same number of rows")
        chunks = self._chunks(x.shape[0])
        self.stats.statistics_calls += 1
        self.stats.elements_processed += int(x.shape[1]) * int(a.shape[1])
        if len(chunks) == 1:
            return kernels.batch_outer_product(x, a)

        def run(chunk: Tuple[int, int]):
            lo, hi = chunk
            xs = x[lo:hi]
            as_ = a[lo:hi]
            return xs.sum(axis=0), as_.sum(axis=0), xs.T @ as_, hi - lo

        partials = list(self.pool.map(run, chunks))
        total = float(sum(p[3] for p in partials))
        sum_x = np.sum([p[0] for p in partials], axis=0)
        sum_a = np.sum([p[1] for p in partials], axis=0)
        sum_outer = np.sum([p[2] for p in partials], axis=0)
        return sum_x / total, sum_a / total, sum_outer / total

    # update_traces: the inherited composition (chunked batch_statistics +
    # in-place EMA) is already optimal here — the chunked partial sums combine
    # into fresh mean arrays that ema_update consumes as scratch.

    def traces_to_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        trace_floor: float = 1e-12,
        out_weights: Optional[np.ndarray] = None,
        out_bias: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        self.stats.weight_updates += 1
        chunks = self._chunks(p_ij.shape[0])
        if len(chunks) == 1:
            return kernels.traces_to_weights(
                p_i, p_j, p_ij, trace_floor, out_weights=out_weights, out_bias=out_bias
            )
        if out_weights is None:
            out_weights = np.empty_like(np.asarray(p_ij, dtype=np.float64))
        weights = out_weights
        log_pj = np.log(np.maximum(np.asarray(p_j, dtype=np.float64), trace_floor))

        def run(chunk: Tuple[int, int]) -> None:
            lo, hi = chunk
            kernels.traces_to_weights(
                np.asarray(p_i[lo:hi]), p_j, np.asarray(p_ij[lo:hi]), trace_floor,
                out_weights=weights[lo:hi],
            )

        list(self.pool.map(run, chunks))
        if out_bias is not None:
            np.copyto(out_bias, log_pj)
            return weights, out_bias
        return weights, log_pj
