"""Data-parallel BCPNN training over the :mod:`repro.comm` transports.

StreamBrain's MPI backend exploits the fact that BCPNN learning is *local*:
each rank accumulates probability statistics on its own shard of the batch
and the shards are combined with a single allreduce — there is no gradient
to backpropagate across ranks (Section II-B).  This module maps that
algorithm onto the :class:`~repro.comm.Communicator` interface:

* :class:`DistributedBackend` — a :class:`~repro.backend.base.Backend` that
  *simulates* rank-sharding inside one process using the communicator's
  driver-side combine helpers; useful for testing the reduction algebra and
  for the ``backend="mpi"``/``"distributed"`` registry names.
* :class:`DistributedTrainer` — real data-parallel training: an SPMD program
  (:func:`train_layer_program`) launched through ``comm.run`` where every
  rank owns an identical layer replica, computes the sufficient statistics
  of its shard of each global batch, and applies the update from **one
  packed allreduce per batch**.  Rank 0 runs inline in the driver, so the
  caller's layer object is trained in place.  Because the reduction is
  exact, training with ``R`` ranks produces bit-for-bit (up to floating
  point summation order) the same traces as the serial run — on the serial,
  thread and process transports alike (the invariance tests in
  ``tests/backend/test_distributed.py`` and ``tests/comm`` check this).
"""

from __future__ import annotations

import copy
import os
import pickle
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import faults, kernels
from repro.backend.base import Backend
from repro.comm import CommRequest, Communicator, LocalComm, split_ranks
from repro.engine.pipeline import mean_activation_entropy, resolve_comm_overlap
from repro.exceptions import BackendError, DataError
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "LocalComm",
    "DistributedBackend",
    "DistributedTrainer",
    "split_ranks",
    "ShardStatistics",
    "train_layer_program",
    "resolve_backend_name",
]


class DistributedBackend(Backend):
    """Rank-sharded compute backend over a communicator's combine algebra.

    Every kernel partitions the batch rows over ``comm.size`` ranks, computes
    rank-local results, and combines the sufficient statistics with a single
    allreduce — the same reduction algebra :class:`DistributedTrainer` uses,
    but packaged behind the :class:`Backend` interface so the execution
    engine (and therefore ``Network(backend="mpi")``) can stream batches
    through it end-to-end.  The sharding is simulated in-process through the
    communicator's driver-side combine helpers (real process-parallel
    training/serving goes through ``comm.run`` instead — see
    :class:`DistributedTrainer` and :mod:`repro.serving`).  The forward pass
    needs no communication (each rank computes activations for its own
    rows); only the trace statistics are reduced, which is the paper's
    "communication scales with the model, not the batch" property.

    Numerics match the NumPy reference up to floating-point summation order
    (the per-rank partial sums are added in a different order than one fused
    GEMM).
    """

    name = "distributed"
    precision = "float64"
    supports_parallel = True

    def __init__(self, n_ranks: Optional[int] = None, comm: Optional[Communicator] = None) -> None:
        super().__init__()
        if comm is not None:
            if not isinstance(comm, Communicator):
                raise BackendError("comm must be a repro.comm.Communicator")
            if n_ranks is not None and int(n_ranks) != comm.size:
                raise BackendError("n_ranks disagrees with the supplied communicator size")
            self.comm = comm
        else:
            self.comm = LocalComm(int(n_ranks) if n_ranks is not None else 2)

    # ------------------------------------------------------------- kernels
    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        sparse=None,
    ) -> np.ndarray:
        return self.forward_into(
            x, weights, bias, mask_expanded, hidden_sizes, bias_gain, sparse=sparse
        )

    def forward_into(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        out: Optional[np.ndarray] = None,
        workspace=None,
        sparse=None,
    ) -> np.ndarray:
        x = self._require_2d(x, "x")
        n_rows = x.shape[0]
        self.stats.forward_calls += 1
        n_hidden = int(sparse.layout.n_hidden if sparse is not None else weights.shape[1])
        self.stats.elements_processed += int(n_rows) * n_hidden
        if out is None:
            if workspace is not None:
                out = workspace.activations[:n_rows]
            else:
                out = np.empty((n_rows, n_hidden), dtype=np.float64)
        if sparse is not None:
            # Rank-local block-sparse forward: each simulated rank runs the
            # gather-GEMMs on its own row shard (no communication needed).
            for lo, hi in split_ranks(n_rows, self.comm.size):
                if hi <= lo:
                    continue
                support = kernels.compute_support_sparse(
                    x[lo:hi], sparse.blocks, bias, sparse.layout, bias_gain
                )
                kernels.hidden_activations(support, hidden_sizes, out=out[lo:hi])
            return out
        if mask_expanded is not None:
            if workspace is not None:
                if getattr(workspace, "masked_valid", False):
                    effective = workspace.masked_weights
                else:
                    effective = np.multiply(weights, mask_expanded, out=workspace.masked_weights)
                    workspace.masked_valid = True
            else:
                effective = weights * mask_expanded
        else:
            effective = weights
        # Rank-local compute: activations of a row only depend on that row.
        for lo, hi in split_ranks(n_rows, self.comm.size):
            if hi <= lo:
                continue
            support = bias_gain * bias[None, :] + x[lo:hi] @ effective
            kernels.hidden_activations(support, hidden_sizes, out=out[lo:hi])
        return out

    def batch_statistics(
        self, x: np.ndarray, a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = self._require_2d(x, "x")
        a = self._require_2d(a, "a")
        if x.shape[0] != a.shape[0]:
            raise BackendError("x and a must have the same number of rows")
        if x.shape[0] == 0:
            raise BackendError("cannot compute batch statistics of an empty batch")
        self.stats.statistics_calls += 1
        self.stats.elements_processed += int(x.shape[1]) * int(a.shape[1])
        n_input, n_hidden = x.shape[1], a.shape[1]
        sum_x, sum_a, sum_outer, counts = [], [], [], []
        for lo, hi in split_ranks(x.shape[0], self.comm.size):
            if hi <= lo:
                sum_x.append(np.zeros(n_input))
                sum_a.append(np.zeros(n_hidden))
                sum_outer.append(np.zeros((n_input, n_hidden)))
                counts.append(np.zeros(1))
                continue
            xs, as_ = x[lo:hi], a[lo:hi]
            sum_x.append(xs.sum(axis=0))
            sum_a.append(as_.sum(axis=0))
            sum_outer.append(xs.T @ as_)
            counts.append(np.asarray([float(hi - lo)]))
        total = float(self.comm.reduce_parts(counts, op="sum")[0])
        mean_x = self.comm.reduce_parts(sum_x, op="sum") / total
        mean_a = self.comm.reduce_parts(sum_a, op="sum") / total
        mean_outer = self.comm.reduce_parts(sum_outer, op="sum") / total
        return mean_x, mean_a, mean_outer

    def traces_to_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        trace_floor: float = 1e-12,
        out_weights: Optional[np.ndarray] = None,
        out_bias: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        # The trace-to-weight conversion is replicated on every rank (the
        # traces themselves are already identical after the allreduce).
        self.stats.weight_updates += 1
        return kernels.traces_to_weights(
            p_i, p_j, p_ij, trace_floor, out_weights=out_weights, out_bias=out_bias
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DistributedBackend(ranks={self.comm.size})"


@dataclass
class ShardStatistics:
    """Per-rank sufficient statistics of one global batch shard."""

    sum_x: np.ndarray
    sum_a: np.ndarray
    sum_outer: np.ndarray
    count: int

    @classmethod
    def empty(cls, n_input: int, n_hidden: int) -> "ShardStatistics":
        return cls(
            sum_x=np.zeros(n_input),
            sum_a=np.zeros(n_hidden),
            sum_outer=np.zeros((n_input, n_hidden)),
            count=0,
        )


@dataclass
class DistributedEpochReport:
    """Bookkeeping returned by :meth:`DistributedTrainer.train_layer`."""

    epochs: int
    global_batches: int
    ranks: int
    samples: int
    allreduce_calls: int
    bytes_communicated: int
    swaps: int = 0
    extra: Dict[str, object] = field(default_factory=dict)


# --------------------------------------------------------------------------
# The SPMD training program (runs on every rank through ``comm.run``).
# --------------------------------------------------------------------------

def _generator_from_state(state: Dict[str, object]) -> np.random.Generator:
    """Rebuild a NumPy generator from a shipped ``bit_generator.state``."""
    bit_generator = getattr(np.random, str(state["bit_generator"]))()
    bit_generator.state = state
    return np.random.Generator(bit_generator)


def resolve_backend_name(spec, backend) -> Optional[str]:
    """A registry-resolvable name for a backend choice, or ``None``.

    Worker ranks rebuild model replicas in other threads/processes, so a
    live backend *instance* cannot be shipped — but its registry name can.
    ``spec`` is the constructor-supplied backend spec (string, instance or
    ``None``); ``backend`` is the resolved instance (or ``None``).  Returns
    a name :func:`repro.backend.registry.get_backend` accepts, preferring
    the explicit spec string, then the instance's ``name``, then its
    ``precision`` (the registry key for the low-precision wrappers).
    """
    from repro.backend.registry import list_backends

    if isinstance(spec, str):
        return spec
    if backend is None:
        return None
    names = set(list_backends())
    for candidate in (getattr(backend, "name", None), getattr(backend, "precision", None)):
        if candidate in names:
            return candidate
    return None


def _replica_from_spec(spec: Dict[str, object], rng: np.random.Generator):
    """Construct a worker-rank layer replica from a config-only spec.

    Only small configuration crosses the process boundary; the layer-sized
    trace/mask arrays are broadcast afterwards through the communicator's
    shared-memory path (see :func:`train_layer_program`).  ``rng`` must use
    the same bit-generator type as rank 0's layer so the subsequent in-place
    state synchronisation is well defined.
    """
    from repro.core.hyperparams import BCPNNHyperParameters
    from repro.core.layers import InputSpec, StructuralPlasticityLayer

    layer = StructuralPlasticityLayer(
        n_hypercolumns=int(spec["n_hypercolumns"]),
        n_minicolumns=int(spec["n_minicolumns"]),
        hyperparams=BCPNNHyperParameters.from_dict(dict(spec["hyperparams"])),
        backend=spec.get("backend"),
        # Replicas must make the same dense-vs-sparse execution choice as
        # rank 0, or the per-shard forward bits (and on multi-hypercolumn
        # layers the block structure) would differ across ranks.
        sparse=spec.get("sparse"),
        seed=rng,
        name=str(spec["name"]),
    )
    layer.build(InputSpec([int(s) for s in spec["input_sizes"]]))
    layer.batches_trained = int(spec["batches_trained"])
    return layer


def _payload_token(mask: np.ndarray) -> float:
    """Small integer digest of a plasticity mask, exact in float64.

    Travels inside the sparse-packed statistics vector so ranks can verify
    they packed against the same mask layout: the sum-reduction of ``size``
    identical tokens must equal ``size * token`` exactly (tokens stay far
    below 2**53, so the float64 sum is exact; any disagreement — a diverged
    replica mask — makes the equality fail for every possible rank count).
    """
    return float(zlib.crc32(np.ascontiguousarray(mask).tobytes()) % (1 << 20))


def _sync_replica(comm: Communicator, layer) -> None:
    """Make every rank's replica bit-identical to rank 0's layer.

    Broadcasts the traces, the structural-plasticity mask and the RNG state
    (the plasticity rule shares the layer generator, so synchronising it
    keeps epoch-boundary mask swaps identical across ranks).  Re-imposing
    rank 0's generator state matters for the *stochastic* competition modes:
    their shard-shaped noise draws desynchronise the per-rank generators
    mid-epoch, and without this resync an epoch boundary would not be a
    deterministic resume point — a respawned worker could never replay the
    dead rank's draw stream, breaking the fault-tolerance guarantee that a
    recovered run is bitwise-identical to an uninterrupted one.
    """
    layer.traces.p_i[:] = comm.bcast(layer.traces.p_i, root=0)
    layer.traces.p_j[:] = comm.bcast(layer.traces.p_j, root=0)
    layer.traces.p_ij[:] = comm.bcast(layer.traces.p_ij, root=0)
    layer.plasticity.mask[:] = comm.bcast(layer.plasticity.mask, root=0)
    # PCG64 state holds 128-bit integers, so it ships as a pickled blob
    # rather than a fixed-width array.  Rank 0 round-trips its own state
    # (a no-op); every other rank adopts it in place — never a new
    # Generator object, the plasticity rule shares this one.
    blob = comm.bcast(
        np.frombuffer(pickle.dumps(layer._rng.bit_generator.state), dtype=np.uint8),
        root=0,
    )
    layer._rng.bit_generator.state = pickle.loads(blob.tobytes())
    layer._refresh_mask()
    layer.refresh_weights()


def train_layer_program(
    comm: Communicator,
    layer,
    x: Optional[np.ndarray],
    options: Dict[str, object],
) -> Dict[str, object]:
    """One rank's share of data-parallel hidden-layer training.

    Every rank holds an identical layer replica (rank 0: the driver's live
    layer, in place; workers: rebuilt from ``options["spec"]`` and
    synchronised by broadcast).  Each global batch is block-partitioned over
    the ranks; each rank computes the sufficient statistics of its shard
    and the packed statistics vector ``[count, Σx, Σa, Σ(xᵀa)]`` is combined
    with **one allreduce per batch** — communication scales with the trace
    size, never with the batch.  The reduced update is applied identically
    on every rank, so the replicas never drift.

    ``options["mode"]``:

    * ``"rate"`` — statistics of the raw rate activations (the historical
      :class:`DistributedTrainer` semantics, used by experiment E9);
    * ``"competitive"`` — mirrors ``StructuralPlasticityLayer.train_batch``:
      first-batch marginal calibration (from the *global* batch mean) plus
      the configured competition rule.  Deterministic competition modes
      ("softmax") are rank-invariant; stochastic modes draw shard-shaped
      noise and are statistically, not bitwise, equivalent across rank
      counts.

    Four engine-mirroring options keep the SPMD program aligned with the
    pipelined serial path:

    * ``options["weight_refresh_tol"]`` — stale-weights caching: the
      per-batch ``traces_to_weights`` refresh is skipped while the
      accumulated ``taupdt``-scaled marginal-trace drift stays under the
      tolerance.  The drift is computed from the *reduced* statistics, which
      are identical on every rank, so the refresh decisions — and therefore
      the training — stay rank-invariant.  ``0`` refreshes every batch
      (exact, the historical behaviour).
    * ``options["pipeline"]`` — gather the *next* batch's local shard before
      blocking on the current batch's allreduce, overlapping the gather with
      the other ranks' compute skew.  Purely a scheduling change: the same
      shards are reduced in the same order, so results are bitwise
      unaffected.
    * ``options["comm_overlap"]`` (``"auto"``/``"on"``/``"off"``) — the
      software-pipelined communication schedule: batch ``k``'s packed
      statistics are published through a *nonblocking* ``iallreduce`` and
      batch ``k+1``'s forward + local statistics run **before** waiting on
      ``k``'s reduction, hiding the collective's latency behind local
      compute.  Batch ``k+1`` therefore forwards on one-batch-stale
      weights, which is only admissible under the stale-weights contract —
      overlap engages only when ``weight_refresh_tol > 0`` (see
      :func:`repro.engine.pipeline.resolve_comm_overlap`); at ``tol=0``
      every mode keeps today's blocking schedule bit-for-bit.  The schedule
      stays rank-invariant: the drift accounting runs on reduced statistics
      in the same order on every rank.
    * ``options["sparse_payload"]`` (``"auto"``/``"on"``/``"off"``) — once
      the structural-plasticity mask can no longer rewire inside this
      program (after the last in-program plasticity step, or always when
      plasticity is inert), the ``Σxᵀa`` block of the payload is packed to
      the **active entries only** using the mask's
      :class:`~repro.kernels.SparseLayout` (plus a mask-digest token each
      rank verifies after the reduction), cutting the allreduce payload by
      the density factor.  Silent joint-trace entries then decay toward
      zero instead of tracking co-activations — exactly the statistics the
      mutual-information scoring would never read again in this program —
      while active traces, marginals, masks and predictions are identical
      to the dense payload (the gathered per-block ``Σxᵀa`` GEMM performs
      the same length-``B`` contractions as the dense one).  Dense packing
      is used automatically in every epoch where plasticity may still
      rewire.

    Three fault-tolerance options support crash-and-resume training on the
    fault-tolerant transports (see :meth:`DistributedTrainer.train_layer`):

    * ``options["start_epoch"]`` — re-enter the epoch loop at an epoch
      boundary.  Epoch indices stay *absolute* (schedules like
      ``frozen_from`` and ``end_epoch`` are unaffected) and the shuffle
      stream is fast-forwarded by discarding the completed epochs'
      permutations, so a resumed run draws exactly the orders the
      uninterrupted run would have — the resume is bitwise-exact.
    * ``options["progress"]`` — a live dict rank 0 updates at every epoch
      boundary with the completed-epoch count and a resume snapshot
      (traces, mask, RNG state).  Rank 0 runs inline in the driver, so the
      driver still holds the last consistent state after a crash.
    * ``options["fault_injection"]`` — ``{rank, epoch, batch}`` test hook:
      the matching rank dies at the start of that global batch (a hard
      ``os._exit`` on multi-process transports, a raised
      :class:`BackendError` otherwise).
    """
    rank, size = comm.rank, comm.size
    x = comm.bcast(x, root=0)
    is_replica = layer is None
    if is_replica:
        layer = _replica_from_spec(
            options["spec"], _generator_from_state(options["rng_layer_state"])
        )
    # In-place state reset (never a new Generator object: the plasticity rule
    # shares the layer's generator) makes every replica's draw stream match
    # rank 0's exactly — calibration jitter and mask swaps stay identical.
    layer._rng.bit_generator.state = options["rng_layer_state"]
    _sync_replica(comm, layer)

    shuffle_rng = np.random.default_rng(int(options["shuffle_seed"]))
    epochs = int(options["epochs"])
    batch_size = int(options["batch_size"])
    shuffle = bool(options["shuffle"])
    mode = str(options.get("mode", "rate"))
    competitive = mode == "competitive"
    tol = float(options.get("weight_refresh_tol", 0.0))
    pipelined = bool(options.get("pipeline", False))
    overlap = resolve_comm_overlap(str(options.get("comm_overlap", "auto")), tol, size)
    payload_mode = str(options.get("sparse_payload", "auto"))
    if payload_mode not in ("auto", "on", "off"):
        raise BackendError(
            f"sparse_payload must be 'auto', 'on' or 'off', got {payload_mode!r}"
        )

    n = x.shape[0]
    start_epoch = int(options.get("start_epoch", 0))
    if not 0 <= start_epoch <= epochs:
        raise BackendError(f"start_epoch must be in [0, {epochs}], got {start_epoch}")
    if shuffle:
        # Fast-forward the shuffle stream past the already-completed epochs
        # so epoch e sees the same permutation as in an uninterrupted run.
        for _ in range(start_epoch):
            shuffle_rng.permutation(n)
    inject = options.get("fault_injection")
    progress = options.get("progress") if rank == 0 else None
    taupdt = float(layer.hyperparams.taupdt)
    n_input = layer.traces.n_input
    n_hidden = layer.traces.n_hidden
    stats_head = 1 + n_input + n_hidden
    packed = np.empty(stats_head + n_input * n_hidden, dtype=np.float64)
    mean_entropy: List[float] = []
    epoch_logs: List[Dict[str, float]] = []
    # Resumed programs seed the cumulative counters with the completed work
    # so logs and reports look like one uninterrupted run.
    total_batches = int(options.get("batches_done", 0))
    total_swaps = int(options.get("swaps_done", 0))
    # Accumulated taupdt-scaled marginal-trace drift since the last weight
    # refresh (_sync_replica just refreshed, so the weights start fresh).
    # Computed from reduced statistics only, hence identical on every rank.
    staleness = 0.0
    starts = list(range(0, n, batch_size))

    # First epoch from which the mask can no longer rewire inside this
    # program: structural plasticity fires at the end of epoch e when
    # (e + 1) % mask_update_period == 0, so everything after the last such
    # epoch is a frozen-mask phase.  The schedule depends only on shipped
    # options and synchronised hyper-parameters, hence is identical on every
    # rank.  Sparse payloads are admissible exactly there: the silent-trace
    # statistics they drop are never read by the mutual-information scoring
    # again in this program, and masked forwards never see silent weights.
    period = int(layer.hyperparams.mask_update_period)
    plasticity = getattr(layer, "plasticity", None)
    plasticity_inert = plasticity is None or plasticity.connections_per_hcu in (
        0,
        plasticity.n_input_hypercolumns,
    )
    if plasticity_inert:
        frozen_from = 0
    else:
        swap_epochs = [e for e in range(epochs) if (e + 1) % period == 0]
        frozen_from = (swap_epochs[-1] + 1) if swap_epochs else 0

    # Per-layout sparse-payload state, rebuilt only when the mask layout
    # changes (between plasticity steps the cached buffers are reused).
    sp_state: Dict[str, object] = {}

    def sparse_context(layout) -> Dict[str, object]:
        if sp_state.get("layout") is not layout:
            sp_state["layout"] = layout
            sp_state["token"] = _payload_token(layer.plasticity.mask)
            sp_state["packed"] = np.empty(
                stats_head + 1 + layout.packed_size, dtype=np.float64
            )
            # Pre-zeroed dense mean-outer buffer the reduced active entries
            # scatter into; silent entries stay exactly 0.0 forever, so
            # apply_statistics decays the silent traces and nothing else.
            sp_state["outer"] = np.zeros((n_input, n_hidden), dtype=np.float64)
        return sp_state

    def gather_shard(order: np.ndarray, start: int) -> np.ndarray:
        batch_idx = order[start : start + batch_size]
        lo, hi = split_ranks(batch_idx.shape[0], size)[rank]
        return x[batch_idx[lo:hi]]

    def fill_statistics(local: np.ndarray, activations, ctx) -> np.ndarray:
        """Pack this rank's shard statistics; returns the payload to reduce."""
        buf = packed if ctx is None else ctx["packed"]
        if local.shape[0] > 0:
            buf[0] = float(local.shape[0])
            buf[1 : 1 + n_input] = local.sum(axis=0)
            buf[1 + n_input : stats_head] = activations.sum(axis=0)
            if ctx is None:
                buf[stats_head:] = (local.T @ activations).ravel()
            else:
                layout = ctx["layout"]
                body = buf[stats_head + 1 :]
                for h, idx, lo, hi in layout.iter_blocks():
                    if idx.size:
                        slab = body[
                            layout.block_starts[h] : layout.block_starts[h + 1]
                        ].reshape(idx.size, hi - lo)
                        # Same length-B contraction as the dense (F,B)@(B,H)
                        # GEMM restricted to active entries, so the reduced
                        # active statistics are bitwise-identical.
                        np.matmul(local[:, idx].T, activations[:, lo:hi], out=slab)
        else:
            buf[:] = 0.0
        if ctx is not None:
            buf[stats_head] = ctx["token"]
        return buf

    def apply_reduction(reduced: np.ndarray, ctx) -> None:
        """Apply one reduced statistics vector + the drift-gated refresh."""
        nonlocal staleness
        count = reduced[0]
        mean_x_red = reduced[1 : 1 + n_input] / count
        mean_a_red = reduced[1 + n_input : stats_head] / count
        if ctx is None:
            mean_outer = reduced[stats_head:].reshape(n_input, n_hidden) / count
        else:
            if reduced[stats_head] != size * ctx["token"]:
                raise BackendError(
                    "sparse-packed allreduce mask tokens disagree across ranks "
                    "(replica masks diverged mid-program)"
                )
            layout = ctx["layout"]
            body = reduced[stats_head + 1 :]
            mean_outer = ctx["outer"]
            for h, idx, lo, hi in layout.iter_blocks():
                if idx.size:
                    slab = body[
                        layout.block_starts[h] : layout.block_starts[h + 1]
                    ].reshape(idx.size, hi - lo)
                    mean_outer[idx, lo:hi] = slab / count
        layer.traces.apply_statistics(mean_x_red, mean_a_red, mean_outer, taupdt)
        if tol > 0.0 and taupdt < 1.0:
            # Stale-weights caching, rank-invariant by construction: the
            # drift is derived from the reduced (identical-everywhere)
            # means and the post-update traces.  The applied max-norm
            # marginal step is taupdt/(1-taupdt) * max|mean - p_new|.
            drift = max(
                float(np.max(np.abs(mean_x_red - layer.traces.p_i))),
                float(np.max(np.abs(mean_a_red - layer.traces.p_j))),
            )
            staleness += drift * taupdt / (1.0 - taupdt)
            if staleness > tol:
                layer.refresh_weights()
                staleness = 0.0
        else:
            layer.refresh_weights()
            staleness = 0.0

    # The in-flight nonblocking reduction of the overlapped schedule: at
    # most ONE request is outstanding at any time (required by the process
    # transport's single-barrier parity-slot protocol), and it never
    # crosses an epoch boundary (drained before end_epoch reads the traces).
    pending: Optional[Tuple[CommRequest, Optional[Dict[str, object]]]] = None

    for epoch in range(start_epoch, epochs):
        started = time.perf_counter()
        order = shuffle_rng.permutation(n) if shuffle else np.arange(n)
        mean_entropy.clear()
        pending_local: Optional[np.ndarray] = None
        ctx: Optional[Dict[str, object]] = None
        if payload_mode != "off" and epoch >= frozen_from:
            layout = layer.payload_layout()
            if layout is not None and (payload_mode == "on" or layout.density < 1.0):
                ctx = sparse_context(layout)
        for index, start in enumerate(starts):
            if (
                inject is not None
                and epoch == int(inject["epoch"])
                and index == int(inject["batch"])
                and rank == int(inject["rank"])
            ):
                if rank != 0 and comm.transport in ("process", "tcp"):
                    # A hard kill, not an exception: exercises the real
                    # dead-worker detection and respawn/re-admission path.
                    os._exit(17)
                raise BackendError(
                    f"injected crash on rank {rank} at epoch {epoch}, batch {index}"
                )
            local = pending_local if pending_local is not None else gather_shard(order, start)
            pending_local = None
            if competitive and layer.batches_trained == 0:
                # Global first-batch marginals for the trace calibration —
                # one extra packed allreduce, only ever on the first batch
                # of the whole program (so never with a reduction in
                # flight).
                head = np.empty(1 + n_input, dtype=np.float64)
                head[0] = float(local.shape[0])
                head[1:] = local.sum(axis=0) if local.shape[0] else 0.0
                reduced_head = comm.allreduce(head, op="sum")
                layer.traces.calibrate_marginals(
                    mean_x=reduced_head[1:] / reduced_head[0], jitter=0.02, rng=layer._rng
                )
                layer.refresh_weights()
            if local.shape[0] > 0:
                activations = layer.forward_raw(local)
                if competitive:
                    activations = layer._training_activity(activations)
                    mean_entropy.append(mean_activation_entropy(activations))
            else:
                activations = None
            buf = fill_statistics(local, activations, ctx)
            if pipelined and index + 1 < len(starts):
                # Pipelining: gather the next batch's shard before blocking
                # on the allreduce, so the copy overlaps other ranks' skew.
                pending_local = gather_shard(order, starts[index + 1])
            if overlap:
                # Software pipeline: this batch's forward and statistics ran
                # BEFORE waiting on the previous batch's reduction (the
                # overlap window), so the forward used one-batch-stale
                # weights — admissible because tol > 0.  The contribution is
                # captured at iallreduce time, so ``buf`` is free for reuse.
                if pending is not None:
                    request, request_ctx = pending
                    pending = None
                    apply_reduction(request.wait(), request_ctx)
                pending = (comm.iallreduce(buf, op="sum"), ctx)
            else:
                apply_reduction(comm.allreduce(buf, op="sum"), ctx)
            if competitive:
                layer.batches_trained += 1
            total_batches += 1
        if pending is not None:
            # Drain the pipeline: plasticity and the epoch-boundary weight
            # flush must observe every applied batch.
            request, request_ctx = pending
            pending = None
            apply_reduction(request.wait(), request_ctx)
        if staleness > 0.0:
            # The epoch boundary publishes weights (mask plasticity reads
            # traces, but callbacks and the caller observe the layer), so
            # flush any accumulated staleness here.
            layer.refresh_weights()
            staleness = 0.0
        swaps = layer.end_epoch(epoch)
        total_swaps += int(swaps)
        if competitive:
            # Stochastic competition modes draw shard-shaped noise, which
            # desynchronises the shared layer generator across ranks and can
            # make the epoch-boundary mask swaps diverge.  Re-imposing rank
            # 0's traces/mask here bounds any divergence to a single epoch
            # (deterministic modes broadcast already-identical state).
            _sync_replica(comm, layer)
        log: Dict[str, float] = {
            "swaps": float(swaps),
            "batches": float(total_batches),
            "seconds": time.perf_counter() - started,
            "sparse_payload": 1.0 if ctx is not None else 0.0,
            "payload_floats": float(
                (ctx["packed"].size if ctx is not None else packed.size)
            ),
        }
        if competitive:
            log["mean_activation_entropy"] = (
                float(np.mean(mean_entropy)) if mean_entropy else 0.0
            )
        epoch_logs.append(log)
        if progress is not None:
            # Epoch boundaries are consistent resume points: the pipeline is
            # drained, staleness flushed and plasticity applied, so the
            # snapshot plus start_epoch=epoch+1 replays the remainder of the
            # run bitwise-identically.
            progress["epoch"] = epoch + 1
            progress["global_batches"] = total_batches
            progress["swaps"] = total_swaps
            progress["epoch_logs"] = list(epoch_logs)
            progress["snapshot"] = {
                "p_i": layer.traces.p_i.copy(),
                "p_j": layer.traces.p_j.copy(),
                "p_ij": layer.traces.p_ij.copy(),
                "mask": layer.plasticity.mask.copy(),
                "rng_state": copy.deepcopy(layer._rng.bit_generator.state),
                "batches_trained": int(layer.batches_trained),
            }
        if rank == 0:
            # Driver-side epoch-boundary hook (rank 0 runs inline): the same
            # consistent state the in-memory snapshot above captures, handed
            # to the durable checkpoint layer.
            hook = options.get("on_epoch_boundary")
            if hook is not None:
                hook(
                    epoch,
                    {
                        "epoch_logs": [dict(log) for log in epoch_logs],
                        "global_batches": total_batches,
                        "swaps": total_swaps,
                    },
                )

    if is_replica:
        layer.backend.close()  # replica-owned pools/buffers die with the program
    return {
        "rank": rank,
        "global_batches": total_batches,
        "swaps": total_swaps,
        "epoch_logs": epoch_logs,
        "allreduce_calls": int(comm.collective_calls["allreduce"]),
        "iallreduce_calls": int(comm.collective_calls["iallreduce"]),
        "bytes_communicated": int(comm.bytes_communicated),
    }


def _layer_snapshot(layer) -> Dict[str, object]:
    """Everything needed to restore a layer to a consistent resume point."""
    snapshot: Dict[str, object] = {
        "p_i": layer.traces.p_i.copy(),
        "p_j": layer.traces.p_j.copy(),
        "p_ij": layer.traces.p_ij.copy(),
        "rng_state": copy.deepcopy(layer._rng.bit_generator.state),
        "batches_trained": int(layer.batches_trained),
    }
    plasticity = getattr(layer, "plasticity", None)
    if plasticity is not None:
        snapshot["mask"] = plasticity.mask.copy()
    return snapshot


def _restore_layer(layer, snapshot: Dict[str, object]) -> None:
    """In-place inverse of :func:`_layer_snapshot` (weights re-derived)."""
    layer.traces.p_i[:] = snapshot["p_i"]
    layer.traces.p_j[:] = snapshot["p_j"]
    layer.traces.p_ij[:] = snapshot["p_ij"]
    if "mask" in snapshot:
        layer.plasticity.mask[:] = snapshot["mask"]
        layer._refresh_mask()
    layer._rng.bit_generator.state = copy.deepcopy(snapshot["rng_state"])
    layer.batches_trained = int(snapshot["batches_trained"])
    layer.refresh_weights()


class DistributedTrainer:
    """Data-parallel trainer for the unsupervised BCPNN hidden layer.

    The trainer launches :func:`train_layer_program` through
    ``comm.run`` — rank 0 executes inline in the driver (training the
    caller's layer object in place), the transport supplies the other ranks
    (threads, OS processes, or MPI ranks).  The trainer is duck-typed
    against :class:`repro.core.layers.StructuralPlasticityLayer`: it
    requires ``layer.forward_raw``, ``layer.traces``,
    ``layer.refresh_weights``, ``layer.end_epoch`` and ``layer.hyperparams``.

    Parameters
    ----------
    comm:
        Any :class:`repro.comm.Communicator` (``SerialComm``, ``ThreadComm``,
        ``ProcessComm`` or ``MPIComm``).
    """

    def __init__(self, comm: Communicator) -> None:
        if not isinstance(comm, Communicator):
            raise BackendError(
                "DistributedTrainer requires a repro.comm.Communicator "
                "(SerialComm, ThreadComm, ProcessComm or MPIComm)"
            )
        self.comm = comm

    # ------------------------------------------------------------ training
    def train_layer(
        self,
        layer,
        x: np.ndarray,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
        shuffle: bool = True,
        on_epoch_end: Optional[Callable[[int, Dict[str, float]], None]] = None,
        mode: str = "rate",
        pipeline: bool = False,
        weight_refresh_tol: float = 0.0,
        comm_overlap: str = "auto",
        sparse_payload: str = "auto",
        fault_tolerance: bool = False,
        max_restarts: int = 2,
        fault_injection: Optional[Dict[str, int]] = None,
        resume_state: Optional[Dict[str, object]] = None,
        on_epoch_boundary: Optional[Callable[[int, Dict[str, object]], None]] = None,
    ) -> DistributedEpochReport:
        """Train ``layer`` on ``x`` with rank-sharded batches.

        Every global batch is partitioned into ``comm.size`` shards; each
        rank computes its shard's sufficient statistics and the packed
        statistics are combined with a single allreduce per batch —
        numerically identical to serial training over the same global
        batches (up to floating-point summation order).

        ``pipeline`` overlaps the next shard gather with the allreduce wait
        (bitwise-neutral scheduling); ``weight_refresh_tol`` enables the
        rank-invariant stale-weights caching (see
        :func:`train_layer_program`), with ``0`` refreshing every batch
        exactly as before.

        ``comm_overlap`` (``"auto"``/``"on"``/``"off"``) software-pipelines
        the per-batch allreduce behind the next batch's forward via the
        transport's nonblocking ``iallreduce`` — only engaged when
        ``weight_refresh_tol > 0`` (one-batch-stale weights fall under the
        same contract); at ``tol=0`` every mode is bit-for-bit the blocking
        schedule.  ``sparse_payload`` packs only active-row outer-product
        statistics once the structural-plasticity mask is frozen for the
        remainder of the run, shrinking the reduced payload by roughly the
        mask density (see :func:`train_layer_program` for both contracts).

        ``on_epoch_end`` is invoked on the driver after the program
        completes (the callback cannot cross a process boundary), in epoch
        order, with the rank-0 epoch logs.

        ``resume_state`` re-enters an interrupted call exactly where a prior
        one stopped (the on-disk twin of in-memory worker recovery; used by
        :mod:`repro.checkpoint`): ``{"shuffle_seed", "start_epoch",
        "batches_done", "swaps_done", "completed_logs"}``.  The stored
        shuffle seed is reused instead of drawing from ``rng`` — the
        caller's generator already advanced past that draw before the
        checkpoint was taken — and the program fast-forwards the shuffle
        stream to ``start_epoch``, so the resumed run is bitwise-identical
        to an uninterrupted one at ``weight_refresh_tol=0``.
        ``on_epoch_boundary(epoch, info)`` fires on the driver (rank 0 runs
        inline) at every completed epoch boundary *during* the program —
        the state is consistent there, which is what makes mid-layer
        checkpoints possible; ``info`` carries the shuffle seed, cumulative
        batch/swap counters and all completed epoch logs.

        ``fault_tolerance`` arms crash recovery on transports that support
        it (``comm.fault_tolerant``): when a rank dies mid-program, the
        dead worker is respawned (process) or re-admitted (tcp) through
        ``comm.recover()``, the layer is restored from the last
        completed-epoch snapshot, and training resumes at that epoch
        boundary with the shuffle stream fast-forwarded — at
        ``weight_refresh_tol=0`` the recovered run's final weights are
        bitwise-identical to an uninterrupted run (test-enforced in
        ``tests/backend/test_fault_tolerance.py``).  ``max_restarts``
        bounds the recovery attempts per call.  ``fault_injection``
        (``{"rank": r, "epoch": e, "batch": b}``) kills rank ``r`` at the
        start of that global batch, exactly once — the test hook behind
        ``repro train --inject-crash``.
        """
        x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DataError("x must be a 2-D activation matrix")
        if x.shape[0] == 0:
            raise DataError("cannot train on an empty batch")
        if epochs < 0:
            raise DataError("epochs must be non-negative")
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        if mode not in ("rate", "competitive"):
            raise DataError(f"unknown training mode '{mode}'")
        if float(weight_refresh_tol) < 0.0:
            raise DataError("weight_refresh_tol must be non-negative")
        if comm_overlap not in ("auto", "on", "off"):
            raise DataError(
                f"comm_overlap must be 'auto', 'on' or 'off', got {comm_overlap!r}"
            )
        if sparse_payload not in ("auto", "on", "off"):
            raise DataError(
                f"sparse_payload must be 'auto', 'on' or 'off', got {sparse_payload!r}"
            )
        if int(max_restarts) < 0:
            raise DataError("max_restarts must be non-negative")
        if fault_injection is None:
            # An env-activated ``worker.crash`` rule (REPRO_FAULTS) subsumes
            # the explicit hook, so chaos runs need no plumbing changes.
            fault_injection = faults.crash_injection_from_plan()
        injection: Optional[Dict[str, int]] = None
        if fault_injection is not None:
            missing = {"rank", "epoch", "batch"} - set(fault_injection)
            if missing:
                raise DataError(
                    f"fault_injection needs rank/epoch/batch keys, missing {sorted(missing)}"
                )
            injection = {key: int(fault_injection[key]) for key in ("rank", "epoch", "batch")}
            if not 0 <= injection["rank"] < self.comm.size:
                raise DataError(
                    f"fault_injection rank {injection['rank']} out of range for "
                    f"{self.comm.size} ranks"
                )
        n = x.shape[0]
        # Drawing the seed consumes the caller's generator, so repeated
        # calls with one rng get fresh, still-deterministic shuffles.  A
        # recovery restart reuses the SAME seed: the resumed program
        # fast-forwards the stream instead of drawing a new one.  A
        # checkpoint resume supplies the stored seed for the same reason —
        # the caller's generator consumed the draw before the checkpoint.
        if resume_state is not None:
            shuffle_seed = int(resume_state["shuffle_seed"])
            start_epoch = int(resume_state.get("start_epoch", 0))
            batches_done = int(resume_state.get("batches_done", 0))
            swaps_done = int(resume_state.get("swaps_done", 0))
            completed_logs = [dict(log) for log in resume_state.get("completed_logs", [])]
        else:
            shuffle_seed = int(rng.integers(2**63))
            start_epoch = 0
            batches_done = 0
            swaps_done = 0
            completed_logs = []
        restarts = 0
        while True:
            # The snapshot at attempt start covers crashes before the first
            # epoch boundary of this attempt (rank 0 trains the caller's
            # layer in place, so a mid-epoch crash leaves it partial).
            attempt_state = _layer_snapshot(layer)
            spec = {
                "n_hypercolumns": layer.n_hypercolumns,
                "n_minicolumns": layer.n_minicolumns,
                "hyperparams": layer.hyperparams.to_dict(),
                "input_sizes": list(layer.input_spec.hypercolumn_sizes),
                "name": layer.name,
                "batches_trained": int(layer.batches_trained),
                # Worker replicas must compute their shards on the same compute
                # backend as rank 0, or the reduction mixes precisions.
                "backend": resolve_backend_name(layer._backend_spec, layer.backend),
                # ... and on the same execution plan (dense vs block-sparse).
                "sparse": getattr(layer, "sparse_mode", None),
            }
            options = {
                "spec": spec,
                "epochs": int(epochs),
                "batch_size": int(batch_size),
                "shuffle": bool(shuffle),
                "mode": mode,
                "pipeline": bool(pipeline),
                "weight_refresh_tol": float(weight_refresh_tol),
                "comm_overlap": comm_overlap,
                "sparse_payload": sparse_payload,
                "shuffle_seed": shuffle_seed,
                "rng_layer_state": layer._rng.bit_generator.state,
                "start_epoch": start_epoch,
                "batches_done": batches_done,
                "swaps_done": swaps_done,
            }
            progress: Optional[Dict[str, object]] = None
            if fault_tolerance:
                progress = {
                    "epoch": start_epoch,
                    "global_batches": batches_done,
                    "swaps": swaps_done,
                    "epoch_logs": [],
                    "snapshot": None,
                }
                options["progress"] = progress
            if injection is not None:
                options["fault_injection"] = injection
            # The boundary hook is a live driver-side closure, so it rides a
            # rank-0-only shallow copy: worker ranks keep the original,
            # picklable options dict (they share the same ``progress``
            # object through the copy, which rank 0 mutates inline).
            rank0_options = options
            if on_epoch_boundary is not None:
                prior_logs = [dict(log) for log in completed_logs]

                def _boundary_hook(
                    epoch: int, info: Dict[str, object], _prior=prior_logs
                ) -> None:
                    payload = dict(info)
                    payload["shuffle_seed"] = shuffle_seed
                    payload["epoch_logs"] = _prior + list(info["epoch_logs"])
                    on_epoch_boundary(epoch, payload)

                rank0_options = dict(options)
                rank0_options["on_epoch_boundary"] = _boundary_hook
            rank_args: List[tuple] = [(layer, x, rank0_options)]
            rank_args += [(None, None, options) for _ in range(1, self.comm.size)]
            try:
                results = self.comm.run(train_layer_program, rank_args)
                break
            except BackendError:
                if not fault_tolerance:
                    raise
                restarts += 1
                if restarts > int(max_restarts):
                    raise
                if not self.comm.recover():
                    raise
                # An explicit fault_injection dict fires exactly once; a
                # REPRO_FAULTS worker.crash rule with count=N re-arms until
                # its budget is spent (how the chaos tests exceed
                # max_restarts with genuine repeat crashes).
                injection = faults.crash_injection_from_plan()
                if progress is not None and progress.get("snapshot") is not None:
                    start_epoch = int(progress["epoch"])
                    batches_done = int(progress["global_batches"])
                    swaps_done = int(progress["swaps"])
                    completed_logs = list(completed_logs) + list(progress["epoch_logs"])
                    _restore_layer(layer, progress["snapshot"])
                else:
                    _restore_layer(layer, attempt_state)
                logger.warning(
                    "rank failure during distributed training; resuming layer "
                    "'%s' from epoch %d (restart %d/%d)",
                    layer.name,
                    start_epoch,
                    restarts,
                    int(max_restarts),
                )
        if hasattr(layer, "flush_weights"):
            # Settle the dense weight matrix the sparse plan's packed
            # refreshes defer (a no-op on dense layers).
            layer.flush_weights()
        report = results[0]
        epoch_logs = completed_logs + list(report["epoch_logs"])
        if on_epoch_end is not None:
            for epoch, log in enumerate(epoch_logs):
                on_epoch_end(epoch, dict(log))
        return DistributedEpochReport(
            epochs=epochs,
            global_batches=int(report["global_batches"]),
            ranks=self.comm.size,
            samples=n,
            allreduce_calls=self.comm.collective_calls["allreduce"],
            bytes_communicated=self.comm.bytes_communicated,
            swaps=int(report["swaps"]),
            extra={
                "epoch_logs": epoch_logs,
                "iallreduce_calls": int(report.get("iallreduce_calls", 0)),
                "restarts": restarts,
            },
        )
