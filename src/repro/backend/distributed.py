"""Simulated-MPI data-parallel training.

StreamBrain's MPI backend exploits the fact that BCPNN learning is *local*:
each rank accumulates probability statistics on its own shard of the batch
and the shards are combined with a single allreduce — there is no gradient
to backpropagate across ranks (Section II-B).  mpi4py is not available in
this environment, so this module provides:

* :class:`LocalComm` — an in-process communicator implementing the handful
  of collectives data-parallel BCPNN needs (``allreduce``, ``allgather``,
  ``bcast``, ``barrier``) over per-rank NumPy arrays.  It is deterministic
  and runs everywhere, which also makes the reduction algebra unit-testable.
* :class:`DistributedTrainer` — shards every global batch over the ranks,
  reduces the per-rank sufficient statistics exactly, and applies a single
  trace update.  Because the reduction is exact, training with ``R`` ranks
  produces bit-for-bit (up to floating point summation order) the same
  traces as the serial run — the invariance test in
  ``tests/backend/test_distributed.py`` checks precisely this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels
from repro.backend.base import Backend
from repro.exceptions import BackendError, DataError
from repro.utils.arrays import split_into_chunks
from repro.utils.logging import get_logger

logger = get_logger(__name__)

__all__ = [
    "LocalComm",
    "DistributedBackend",
    "DistributedTrainer",
    "split_ranks",
    "ShardStatistics",
]

_REDUCTIONS = {
    "sum": lambda arrays: np.sum(arrays, axis=0),
    "mean": lambda arrays: np.mean(arrays, axis=0),
    "max": lambda arrays: np.max(arrays, axis=0),
    "min": lambda arrays: np.min(arrays, axis=0),
}


def split_ranks(n_samples: int, n_ranks: int) -> List[Tuple[int, int]]:
    """Static block partitioning of ``n_samples`` rows over ``n_ranks``."""
    if n_ranks <= 0:
        raise BackendError("n_ranks must be positive")
    return split_into_chunks(n_samples, n_ranks)


class LocalComm:
    """In-process stand-in for an MPI communicator.

    The collectives operate on *lists of per-rank arrays* (index = rank).
    They return what every rank would observe after the MPI call, so code
    written against this interface maps one-to-one onto mpi4py calls.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise BackendError("communicator size must be positive")
        self.size = int(size)
        self.collective_calls: Dict[str, int] = {"allreduce": 0, "allgather": 0, "bcast": 0, "barrier": 0}
        self.bytes_communicated = 0

    # ----------------------------------------------------------- validation
    def _check_contributions(self, contributions: Sequence[np.ndarray], op_name: str) -> List[np.ndarray]:
        if len(contributions) != self.size:
            raise BackendError(
                f"{op_name} expected {self.size} per-rank contributions, got {len(contributions)}"
            )
        arrays = [np.asarray(c, dtype=np.float64) for c in contributions]
        shapes = {a.shape for a in arrays}
        if len(shapes) != 1:
            raise BackendError(f"{op_name} contributions have mismatched shapes: {shapes}")
        return arrays

    # ----------------------------------------------------------- collectives
    def allreduce(self, contributions: Sequence[np.ndarray], op: str = "sum") -> np.ndarray:
        """Combine per-rank arrays; every rank receives the same result."""
        if op not in _REDUCTIONS:
            raise BackendError(f"unknown reduction '{op}'; available: {sorted(_REDUCTIONS)}")
        arrays = self._check_contributions(contributions, "allreduce")
        self.collective_calls["allreduce"] += 1
        self.bytes_communicated += sum(a.nbytes for a in arrays)
        return _REDUCTIONS[op](arrays)

    def allgather(self, contributions: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Every rank receives the list of all contributions."""
        arrays = self._check_contributions(contributions, "allgather")
        self.collective_calls["allgather"] += 1
        self.bytes_communicated += sum(a.nbytes for a in arrays) * self.size
        return [a.copy() for a in arrays]

    def bcast(self, value: np.ndarray, root: int = 0) -> List[np.ndarray]:
        """Broadcast the root's array to all ranks (returned as a per-rank list)."""
        if not 0 <= root < self.size:
            raise BackendError(f"root {root} out of range for size {self.size}")
        arr = np.asarray(value, dtype=np.float64)
        self.collective_calls["bcast"] += 1
        self.bytes_communicated += arr.nbytes * (self.size - 1)
        return [arr.copy() for _ in range(self.size)]

    def barrier(self) -> None:
        """No-op synchronisation point (kept for call-site parity with MPI)."""
        self.collective_calls["barrier"] += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LocalComm(size={self.size})"


class DistributedBackend(Backend):
    """Data-parallel compute backend over the simulated MPI communicator.

    Every kernel partitions the batch rows over ``comm.size`` ranks, computes
    rank-local results, and combines the sufficient statistics with a single
    allreduce — the same reduction algebra :class:`DistributedTrainer` uses,
    but packaged behind the :class:`Backend` interface so the execution
    engine (and therefore ``Network(backend="mpi")``) can stream batches
    through it end-to-end.  The forward pass needs no communication (each
    rank computes activations for its own rows); only the trace statistics
    are reduced, which is the paper's "communication scales with the model,
    not the batch" property.

    Numerics match the NumPy reference up to floating-point summation order
    (the per-rank partial sums are added in a different order than one fused
    GEMM).
    """

    name = "distributed"
    precision = "float64"
    supports_parallel = True

    def __init__(self, n_ranks: Optional[int] = None, comm: Optional[LocalComm] = None) -> None:
        super().__init__()
        if comm is not None:
            if n_ranks is not None and int(n_ranks) != comm.size:
                raise BackendError("n_ranks disagrees with the supplied communicator size")
            self.comm = comm
        else:
            self.comm = LocalComm(int(n_ranks) if n_ranks is not None else 2)

    # ------------------------------------------------------------- kernels
    def forward(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
    ) -> np.ndarray:
        return self.forward_into(x, weights, bias, mask_expanded, hidden_sizes, bias_gain)

    def forward_into(
        self,
        x: np.ndarray,
        weights: np.ndarray,
        bias: np.ndarray,
        mask_expanded: np.ndarray,
        hidden_sizes: Sequence[int],
        bias_gain: float = 1.0,
        out: Optional[np.ndarray] = None,
        workspace=None,
    ) -> np.ndarray:
        x = self._require_2d(x, "x")
        n_rows = x.shape[0]
        self.stats.forward_calls += 1
        self.stats.elements_processed += int(n_rows) * int(weights.shape[1])
        if out is None:
            if workspace is not None:
                out = workspace.activations[:n_rows]
            else:
                out = np.empty((n_rows, weights.shape[1]), dtype=np.float64)
        if mask_expanded is not None:
            if workspace is not None:
                effective = np.multiply(weights, mask_expanded, out=workspace.masked_weights)
            else:
                effective = weights * mask_expanded
        else:
            effective = weights
        # Rank-local compute: activations of a row only depend on that row.
        for lo, hi in split_ranks(n_rows, self.comm.size):
            if hi <= lo:
                continue
            support = bias_gain * bias[None, :] + x[lo:hi] @ effective
            kernels.hidden_activations(support, hidden_sizes, out=out[lo:hi])
        return out

    def batch_statistics(
        self, x: np.ndarray, a: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        x = self._require_2d(x, "x")
        a = self._require_2d(a, "a")
        if x.shape[0] != a.shape[0]:
            raise BackendError("x and a must have the same number of rows")
        if x.shape[0] == 0:
            raise BackendError("cannot compute batch statistics of an empty batch")
        self.stats.statistics_calls += 1
        self.stats.elements_processed += int(x.shape[1]) * int(a.shape[1])
        n_input, n_hidden = x.shape[1], a.shape[1]
        sum_x, sum_a, sum_outer, counts = [], [], [], []
        for lo, hi in split_ranks(x.shape[0], self.comm.size):
            if hi <= lo:
                sum_x.append(np.zeros(n_input))
                sum_a.append(np.zeros(n_hidden))
                sum_outer.append(np.zeros((n_input, n_hidden)))
                counts.append(np.zeros(1))
                continue
            xs, as_ = x[lo:hi], a[lo:hi]
            sum_x.append(xs.sum(axis=0))
            sum_a.append(as_.sum(axis=0))
            sum_outer.append(xs.T @ as_)
            counts.append(np.asarray([float(hi - lo)]))
        total = float(self.comm.allreduce(counts, op="sum")[0])
        mean_x = self.comm.allreduce(sum_x, op="sum") / total
        mean_a = self.comm.allreduce(sum_a, op="sum") / total
        mean_outer = self.comm.allreduce(sum_outer, op="sum") / total
        return mean_x, mean_a, mean_outer

    def traces_to_weights(
        self,
        p_i: np.ndarray,
        p_j: np.ndarray,
        p_ij: np.ndarray,
        trace_floor: float = 1e-12,
        out_weights: Optional[np.ndarray] = None,
        out_bias: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        # The trace-to-weight conversion is replicated on every rank (the
        # traces themselves are already identical after the allreduce).
        self.stats.weight_updates += 1
        return kernels.traces_to_weights(
            p_i, p_j, p_ij, trace_floor, out_weights=out_weights, out_bias=out_bias
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"DistributedBackend(ranks={self.comm.size})"


@dataclass
class ShardStatistics:
    """Per-rank sufficient statistics of one global batch shard."""

    sum_x: np.ndarray
    sum_a: np.ndarray
    sum_outer: np.ndarray
    count: int

    @classmethod
    def empty(cls, n_input: int, n_hidden: int) -> "ShardStatistics":
        return cls(
            sum_x=np.zeros(n_input),
            sum_a=np.zeros(n_hidden),
            sum_outer=np.zeros((n_input, n_hidden)),
            count=0,
        )


@dataclass
class DistributedEpochReport:
    """Bookkeeping returned by :meth:`DistributedTrainer.train_layer`."""

    epochs: int
    global_batches: int
    ranks: int
    samples: int
    allreduce_calls: int
    bytes_communicated: int
    swaps: int = 0
    extra: Dict[str, float] = field(default_factory=dict)


class DistributedTrainer:
    """Data-parallel trainer for the unsupervised BCPNN hidden layer.

    The trainer is duck-typed against :class:`repro.core.layers.StructuralPlasticityLayer`:
    it requires ``layer.forward_raw``, ``layer.traces``, ``layer.refresh_weights``,
    ``layer.end_epoch`` and ``layer.hyperparams``.

    Parameters
    ----------
    comm:
        A :class:`LocalComm` (or API-compatible communicator wrapper).
    """

    def __init__(self, comm: LocalComm) -> None:
        if not isinstance(comm, LocalComm):
            raise BackendError("DistributedTrainer requires a LocalComm instance")
        self.comm = comm

    # ------------------------------------------------------------ training
    def train_layer(
        self,
        layer,
        x: np.ndarray,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
        shuffle: bool = True,
        on_epoch_end: Optional[Callable[[int, Dict[str, float]], None]] = None,
    ) -> DistributedEpochReport:
        """Train ``layer`` on ``x`` with rank-sharded batches.

        Every global batch is partitioned into ``comm.size`` shards; each
        rank computes its shard's sufficient statistics with the layer's own
        backend; the statistics are allreduce-summed and applied as one trace
        update — numerically identical to serial training over the same
        global batches.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise DataError("x must be a 2-D activation matrix")
        if epochs < 0:
            raise DataError("epochs must be non-negative")
        if batch_size <= 0:
            raise DataError("batch_size must be positive")
        n = x.shape[0]
        taupdt = layer.hyperparams.taupdt
        total_batches = 0
        total_swaps = 0
        for epoch in range(epochs):
            order = rng.permutation(n) if shuffle else np.arange(n)
            for start in range(0, n, batch_size):
                batch_idx = order[start : start + batch_size]
                batch = x[batch_idx]
                stats = self._sharded_statistics(layer, batch)
                layer.traces.apply_statistics(stats[0], stats[1], stats[2], taupdt)
                layer.refresh_weights()
                total_batches += 1
            swaps = layer.end_epoch(epoch)
            total_swaps += swaps
            if on_epoch_end is not None:
                on_epoch_end(epoch, {"swaps": float(swaps), "batches": float(total_batches)})
        return DistributedEpochReport(
            epochs=epochs,
            global_batches=total_batches,
            ranks=self.comm.size,
            samples=n,
            allreduce_calls=self.comm.collective_calls["allreduce"],
            bytes_communicated=self.comm.bytes_communicated,
            swaps=total_swaps,
        )

    # ------------------------------------------------------------ internals
    def _sharded_statistics(self, layer, batch: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Compute global batch statistics by reducing per-rank shard sums."""
        shards = split_ranks(batch.shape[0], self.comm.size)
        sum_x_parts: List[np.ndarray] = []
        sum_a_parts: List[np.ndarray] = []
        sum_outer_parts: List[np.ndarray] = []
        counts: List[np.ndarray] = []
        n_input = layer.traces.n_input
        n_hidden = layer.traces.n_hidden
        for lo, hi in shards:
            if hi <= lo:
                sum_x_parts.append(np.zeros(n_input))
                sum_a_parts.append(np.zeros(n_hidden))
                sum_outer_parts.append(np.zeros((n_input, n_hidden)))
                counts.append(np.zeros(1))
                continue
            shard = batch[lo:hi]
            activations = layer.forward_raw(shard)
            sum_x_parts.append(shard.sum(axis=0))
            sum_a_parts.append(activations.sum(axis=0))
            sum_outer_parts.append(shard.T @ activations)
            counts.append(np.asarray([float(hi - lo)]))
        total = float(self.comm.allreduce(counts, op="sum")[0])
        if total <= 0:
            raise DataError("cannot train on an empty batch")
        mean_x = self.comm.allreduce(sum_x_parts, op="sum") / total
        mean_a = self.comm.allreduce(sum_a_parts, op="sum") / total
        mean_outer = self.comm.allreduce(sum_outer_parts, op="sum") / total
        return mean_x, mean_a, mean_outer
