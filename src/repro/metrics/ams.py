"""Approximate Median Significance (AMS), the Higgs-Kaggle challenge metric.

The paper mentions (Section VI) that the Kaggle ATLAS challenge scored
submissions by AMS rather than accuracy/AUC.  We include it so the related
work comparison benchmark can report all three metrics on the same split.

AMS is defined (Adam-Bourdarios et al., 2014) as::

    AMS = sqrt( 2 * ( (s + b + b_reg) * ln(1 + s / (b + b_reg)) - s ) )

where ``s`` and ``b`` are the weighted numbers of true-positive (signal) and
false-positive (background) events selected by the classifier and ``b_reg``
is a regularisation constant (10 in the challenge).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import DataError

__all__ = ["ams_score", "best_ams_threshold"]


def ams_score(
    y_true,
    y_selected,
    weights: Optional[np.ndarray] = None,
    b_reg: float = 10.0,
) -> float:
    """Compute the AMS of a hard selection.

    Parameters
    ----------
    y_true:
        Binary ground-truth labels (1 = signal).
    y_selected:
        Binary selection decision (1 = event selected as signal).
    weights:
        Optional per-event weights; defaults to unit weights.
    b_reg:
        Background regularisation term.
    """
    y_true = np.asarray(y_true)
    y_selected = np.asarray(y_selected)
    if y_true.shape != y_selected.shape or y_true.ndim != 1:
        raise DataError("y_true and y_selected must be 1-D arrays of equal length")
    if weights is None:
        weights = np.ones_like(y_true, dtype=np.float64)
    else:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != y_true.shape:
            raise DataError("weights must match y_true shape")
        if np.any(weights < 0):
            raise DataError("weights must be non-negative")
    if b_reg < 0:
        raise DataError("b_reg must be non-negative")

    selected = y_selected.astype(bool)
    s = float(np.sum(weights[selected & (y_true == 1)]))
    b = float(np.sum(weights[selected & (y_true == 0)]))
    radicand = 2.0 * ((s + b + b_reg) * np.log1p(s / (b + b_reg)) - s)
    if radicand < 0:
        # Only possible through floating point rounding; clamp.
        radicand = 0.0
    return float(np.sqrt(radicand))


def best_ams_threshold(
    y_true,
    scores,
    weights: Optional[np.ndarray] = None,
    b_reg: float = 10.0,
    n_thresholds: int = 200,
) -> Tuple[float, float]:
    """Scan score thresholds and return ``(best_threshold, best_ams)``.

    The scan uses quantile-spaced thresholds of the score distribution so it
    is insensitive to the score scale.
    """
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape or y_true.ndim != 1:
        raise DataError("y_true and scores must be 1-D arrays of equal length")
    if n_thresholds < 2:
        raise DataError("n_thresholds must be >= 2")
    qs = np.linspace(0.0, 1.0, n_thresholds)
    thresholds = np.unique(np.quantile(scores, qs))
    best_thr = float(thresholds[0])
    best_val = -np.inf
    for thr in thresholds:
        selected = (scores >= thr).astype(np.int64)
        val = ams_score(y_true, selected, weights=weights, b_reg=b_reg)
        if val > best_val:
            best_val = val
            best_thr = float(thr)
    return best_thr, float(best_val)
