"""Probability calibration diagnostics.

BCPNN produces genuinely probabilistic outputs (softmax of log-probability
ratios), so beyond accuracy/AUC it is useful to check how well calibrated the
signal probability is — especially when comparing the pure BCPNN head with
the SGD hybrid head.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataError

__all__ = ["calibration_curve", "expected_calibration_error", "brier_score"]


def _validate(y_true, probabilities) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    probs = np.asarray(probabilities, dtype=np.float64)
    if y_true.ndim != 1 or probs.ndim != 1 or y_true.shape != probs.shape:
        raise DataError("y_true and probabilities must be 1-D arrays of equal length")
    if y_true.shape[0] == 0:
        raise DataError("empty inputs")
    if np.any((probs < 0) | (probs > 1)) or not np.all(np.isfinite(probs)):
        raise DataError("probabilities must lie in [0, 1]")
    uniques = np.unique(y_true)
    if not np.all(np.isin(uniques, [0, 1])):
        raise DataError("y_true must be binary 0/1")
    return y_true.astype(np.float64), probs


def calibration_curve(
    y_true, probabilities, n_bins: int = 10
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(bin_centers, observed_frequency, bin_counts)``.

    Bins with no samples get ``observed_frequency = nan`` and ``count = 0``.
    """
    if n_bins < 1:
        raise DataError("n_bins must be >= 1")
    y_true, probs = _validate(y_true, probabilities)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    idx = np.clip(np.digitize(probs, edges[1:-1]), 0, n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins).astype(np.float64)
    pos = np.bincount(idx, weights=y_true, minlength=n_bins)
    observed = np.divide(pos, counts, out=np.full(n_bins, np.nan), where=counts > 0)
    centers = 0.5 * (edges[:-1] + edges[1:])
    return centers, observed, counts.astype(np.int64)


def expected_calibration_error(y_true, probabilities, n_bins: int = 10) -> float:
    """Weighted mean absolute gap between confidence and observed frequency."""
    y_true, probs = _validate(y_true, probabilities)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    idx = np.clip(np.digitize(probs, edges[1:-1]), 0, n_bins - 1)
    counts = np.bincount(idx, minlength=n_bins).astype(np.float64)
    pos = np.bincount(idx, weights=y_true, minlength=n_bins)
    conf = np.bincount(idx, weights=probs, minlength=n_bins)
    mask = counts > 0
    observed = pos[mask] / counts[mask]
    confidence = conf[mask] / counts[mask]
    weights = counts[mask] / counts.sum()
    return float(np.sum(weights * np.abs(observed - confidence)))


def brier_score(y_true, probabilities) -> float:
    """Mean squared error between predicted probability and binary outcome."""
    y_true, probs = _validate(y_true, probabilities)
    return float(np.mean((probs - y_true) ** 2))
