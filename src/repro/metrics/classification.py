"""Confusion-matrix based classification metrics."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.exceptions import DataError
from repro.utils.validation import check_labels, check_same_length

__all__ = [
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "classification_report",
    "log_loss",
]


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    y_true = check_labels(y_true, name="y_true")
    y_pred = check_labels(y_pred, name="y_pred")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, n_classes: Optional[int] = None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = number of samples of class ``i`` predicted ``j``."""
    y_true, y_pred = check_same_length(y_true, y_pred, names=("y_true", "y_pred"))
    y_true = check_labels(y_true, name="y_true")
    y_pred = check_labels(y_pred, name="y_pred")
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    if np.any(y_true >= n_classes) or np.any(y_pred >= n_classes):
        raise DataError("labels exceed the requested number of classes")
    flat = y_true * n_classes + y_pred
    counts = np.bincount(flat, minlength=n_classes * n_classes)
    return counts.reshape(n_classes, n_classes)


def balanced_accuracy(y_true, y_pred) -> float:
    """Mean per-class recall; robust to class imbalance."""
    cm = confusion_matrix(y_true, y_pred)
    support = cm.sum(axis=1).astype(np.float64)
    recalls = np.divide(
        np.diag(cm).astype(np.float64),
        support,
        out=np.zeros(cm.shape[0]),
        where=support > 0,
    )
    present = support > 0
    if not np.any(present):
        return 0.0
    return float(recalls[present].mean())


def precision_recall_f1(
    y_true, y_pred, positive_class: int = 1
) -> Tuple[float, float, float]:
    """Binary precision, recall, and F1 for the given positive class."""
    if positive_class < 0:
        raise DataError("positive_class must be non-negative")
    y_true_arr = check_labels(y_true, name="y_true")
    y_pred_arr = check_labels(y_pred, name="y_pred")
    n_classes = int(max(y_true_arr.max(), y_pred_arr.max(), positive_class)) + 1
    cm = confusion_matrix(y_true, y_pred, n_classes=n_classes)
    tp = float(cm[positive_class, positive_class])
    fp = float(cm[:, positive_class].sum() - tp)
    fn = float(cm[positive_class, :].sum() - tp)
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall > 0 else 0.0
    return precision, recall, f1


def classification_report(y_true, y_pred) -> Dict[str, Dict[str, float]]:
    """Per-class precision/recall/F1/support, keyed by class label string."""
    cm = confusion_matrix(y_true, y_pred)
    report: Dict[str, Dict[str, float]] = {}
    for cls in range(cm.shape[0]):
        precision, recall, f1 = precision_recall_f1(y_true, y_pred, positive_class=cls)
        report[str(cls)] = {
            "precision": precision,
            "recall": recall,
            "f1": f1,
            "support": float(cm[cls, :].sum()),
        }
    report["overall"] = {
        "accuracy": accuracy(y_true, y_pred),
        "balanced_accuracy": balanced_accuracy(y_true, y_pred),
        "support": float(cm.sum()),
    }
    return report


def log_loss(y_true, probabilities, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of the true class.

    ``probabilities`` is ``(n_samples, n_classes)`` with rows summing to one,
    or a 1-D vector of positive-class probabilities for binary problems.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    y_true = check_labels(y_true, name="y_true")
    if probs.ndim == 1:
        probs = np.stack([1.0 - probs, probs], axis=1)
    if probs.ndim != 2:
        raise DataError("probabilities must be 1-D or 2-D")
    if probs.shape[0] != y_true.shape[0]:
        raise DataError("probabilities and y_true have mismatched lengths")
    if np.any(y_true >= probs.shape[1]):
        raise DataError("y_true contains a class not covered by probabilities")
    picked = probs[np.arange(y_true.shape[0]), y_true]
    picked = np.clip(picked, eps, 1.0)
    return float(-np.mean(np.log(picked)))
