"""ROC / AUC and precision-recall curves, computed with vectorised NumPy.

The AUC reported in the paper (76.4% for the BCPNN+SGD hybrid) is the area
under the ROC curve of the signal-class score.  :func:`roc_auc` follows the
standard construction (sort scores descending, accumulate TP/FP counts,
trapezoidal integration); :func:`rank_auc` provides the equivalent
Mann-Whitney-U formulation, which the test-suite uses as an independent
cross-check.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataError

__all__ = ["roc_curve", "roc_auc", "rank_auc", "precision_recall_curve", "average_precision"]


def _validate_binary(y_true, scores) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.ndim != 1 or scores.ndim != 1:
        raise DataError("y_true and scores must be 1-D")
    if y_true.shape[0] != scores.shape[0]:
        raise DataError("y_true and scores must have equal length")
    if y_true.shape[0] == 0:
        raise DataError("empty inputs")
    uniques = np.unique(y_true)
    if not np.all(np.isin(uniques, [0, 1])):
        raise DataError(f"y_true must be binary 0/1, got values {uniques}")
    if not np.all(np.isfinite(scores)):
        raise DataError("scores contain NaN or infinity")
    return y_true.astype(np.int64), scores


def roc_curve(y_true, scores) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(fpr, tpr, thresholds)`` for a binary classification score.

    Ties in ``scores`` are collapsed onto a single threshold, so the curve is
    a step function evaluated at distinct score values, beginning at (0, 0)
    and ending at (1, 1).
    """
    y_true, scores = _validate_binary(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = int(y_true.shape[0] - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise DataError("roc_curve requires both positive and negative samples")

    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_true = y_true[order]

    tp_cum = np.cumsum(sorted_true)
    fp_cum = np.cumsum(1 - sorted_true)

    # Keep only the last occurrence of each distinct score (threshold).
    distinct = np.r_[np.diff(sorted_scores) != 0, True]
    tp = tp_cum[distinct]
    fp = fp_cum[distinct]
    thresholds = sorted_scores[distinct]

    tpr = np.concatenate([[0.0], tp / n_pos])
    fpr = np.concatenate([[0.0], fp / n_neg])
    thresholds = np.concatenate([[np.inf], thresholds])
    return fpr, tpr, thresholds


def roc_auc(y_true, scores) -> float:
    """Area under the ROC curve via trapezoidal integration."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    # numpy 2.0 renamed trapz -> trapezoid; support both.
    trapezoid = getattr(np, "trapezoid", getattr(np, "trapz", None))
    return float(trapezoid(tpr, fpr))


def rank_auc(y_true, scores) -> float:
    """AUC via the Mann-Whitney U statistic (average tie ranks).

    Mathematically identical to :func:`roc_auc`; kept as an independent
    implementation for cross-validation in tests and for callers who prefer
    the probabilistic interpretation P(score_pos > score_neg).
    """
    y_true, scores = _validate_binary(y_true, scores)
    n_pos = int(y_true.sum())
    n_neg = int(y_true.shape[0] - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise DataError("rank_auc requires both positive and negative samples")
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty_like(order, dtype=np.float64)
    ranks[order] = np.arange(1, len(scores) + 1)
    # Average ranks over ties.
    sorted_scores = scores[order]
    i = 0
    while i < len(sorted_scores):
        j = i
        while j + 1 < len(sorted_scores) and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            avg = 0.5 * (i + 1 + j + 1)
            ranks[order[i : j + 1]] = avg
        i = j + 1
    rank_sum_pos = ranks[y_true == 1].sum()
    u_stat = rank_sum_pos - n_pos * (n_pos + 1) / 2.0
    return float(u_stat / (n_pos * n_neg))


def precision_recall_curve(y_true, scores) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(precision, recall, thresholds)`` sorted by decreasing threshold."""
    y_true, scores = _validate_binary(y_true, scores)
    n_pos = int(y_true.sum())
    if n_pos == 0:
        raise DataError("precision_recall_curve requires positive samples")
    order = np.argsort(-scores, kind="mergesort")
    sorted_scores = scores[order]
    sorted_true = y_true[order]
    tp_cum = np.cumsum(sorted_true).astype(np.float64)
    predicted = np.arange(1, len(sorted_true) + 1, dtype=np.float64)
    distinct = np.r_[np.diff(sorted_scores) != 0, True]
    precision = tp_cum[distinct] / predicted[distinct]
    recall = tp_cum[distinct] / n_pos
    thresholds = sorted_scores[distinct]
    # Prepend the (recall=0, precision=1) anchor point.
    precision = np.concatenate([[1.0], precision])
    recall = np.concatenate([[0.0], recall])
    return precision, recall, thresholds


def average_precision(y_true, scores) -> float:
    """Area under the precision-recall curve (step-wise interpolation)."""
    precision, recall, _ = precision_recall_curve(y_true, scores)
    return float(np.sum(np.diff(recall) * precision[1:]))
