"""Evaluation metrics implemented from scratch (no scikit-learn dependency).

The paper reports test accuracy and Area Under the ROC Curve (AUC); the
related Kaggle challenge used the Approximate Median Significance (AMS).
All three, plus the usual confusion-matrix derived scores and calibration
diagnostics, live here.
"""

from repro.metrics.classification import (
    accuracy,
    balanced_accuracy,
    confusion_matrix,
    precision_recall_f1,
    classification_report,
    log_loss,
)
from repro.metrics.roc import (
    roc_curve,
    roc_auc,
    rank_auc,
    precision_recall_curve,
    average_precision,
)
from repro.metrics.ams import ams_score, best_ams_threshold
from repro.metrics.calibration import calibration_curve, expected_calibration_error, brier_score

__all__ = [
    "accuracy",
    "balanced_accuracy",
    "confusion_matrix",
    "precision_recall_f1",
    "classification_report",
    "log_loss",
    "roc_curve",
    "roc_auc",
    "rank_auc",
    "precision_recall_curve",
    "average_precision",
    "ams_score",
    "best_ams_threshold",
    "calibration_curve",
    "expected_calibration_error",
    "brier_score",
]
