"""Config file loading, dotted overrides and precedence-ordered composition.

Layering (lowest to highest precedence, each a plain nested dict):

1. **built-ins** — the schema dataclass defaults,
2. **scenario defaults** — ``default_config()`` of the scenario named by the
   run (each registry entry ships one, mirroring Ludwig's per-dataset
   ``model_configs/higgs_default.yaml``),
3. **user file** — the JSON/YAML file passed to ``repro run``,
4. **dotted ``--set key=value`` overrides** — the highest-precedence layer.

:func:`compose_config` applies the layers and hands the merged dict to
:func:`repro.config.schema.build_config` for typed validation, so an error
in *any* layer surfaces as a :class:`~repro.exceptions.ConfigError` with the
dotted field path.

JSON is always accepted; YAML additionally when PyYAML is importable (CI's
core jobs stay dependency-light — the scenario-matrix job opts into the
``yaml`` extra).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.config.schema import DatasetSection, ExperimentConfig, build_config
from repro.exceptions import ConfigError

__all__ = [
    "HAVE_YAML",
    "load_config_file",
    "parse_set_overrides",
    "deep_merge",
    "compose_config",
    "compose_from_files",
]

try:  # pragma: no cover - exercised both ways across CI jobs
    import yaml as _yaml

    HAVE_YAML = True
except ImportError:  # pragma: no cover
    _yaml = None
    HAVE_YAML = False


def _parse_text(text: str, path: Path) -> Any:
    suffix = path.suffix.lower()
    if suffix in (".yaml", ".yml"):
        if not HAVE_YAML:
            raise ConfigError(
                str(path),
                "YAML configs need PyYAML (pip install 'repro-bcpnn[yaml]'); "
                "JSON configs load without it",
            )
        try:
            return _yaml.safe_load(text)
        except _yaml.YAMLError as exc:
            raise ConfigError(str(path), f"invalid YAML: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        if suffix == ".json" or not HAVE_YAML:
            raise ConfigError(str(path), f"invalid JSON: {exc}") from exc
    # Unrecognised suffix and valid PyYAML: fall back to YAML (a superset).
    try:
        return _yaml.safe_load(text)
    except _yaml.YAMLError as exc:
        raise ConfigError(str(path), f"neither valid JSON nor valid YAML: {exc}") from exc


def load_config_file(path: Union[str, Path]) -> Dict[str, Any]:
    """Read one config file into a plain nested dict (no validation yet)."""
    path = Path(path)
    if not path.is_file():
        raise ConfigError(str(path), "config file not found")
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(str(path), f"cannot read config file: {exc}") from exc
    data = _parse_text(text, path)
    if data is None:
        return {}
    if not isinstance(data, Mapping):
        raise ConfigError(
            str(path), f"the top level must be a mapping, got {type(data).__name__}"
        )
    return dict(data)


def _parse_scalar(text: str) -> Any:
    """Interpret a ``--set`` value: JSON scalar if it parses, else a string.

    JSON (not YAML) semantics on purpose: ``on``/``off`` stay strings — they
    are mode names in this schema, and YAML 1.1's boolean coercion of them
    is exactly the surprise this avoids.
    """
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def parse_set_overrides(pairs: Sequence[str]) -> Dict[str, Any]:
    """Turn ``["training.sparse=on", ...]`` into a nested override dict."""
    out: Dict[str, Any] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ConfigError(pair, "--set overrides must look like section.key=value")
        dotted, raw = pair.split("=", 1)
        dotted = dotted.strip()
        if not dotted:
            raise ConfigError(pair, "--set override has an empty key")
        node = out
        parts = dotted.split(".")
        for part in parts[:-1]:
            child = node.setdefault(part, {})
            if not isinstance(child, dict):
                raise ConfigError(dotted, f"override conflicts with earlier --set {part}=...")
            node = child
        node[parts[-1]] = _parse_scalar(raw)
    return out


def deep_merge(base: Mapping[str, Any], overlay: Mapping[str, Any]) -> Dict[str, Any]:
    """Recursively merge ``overlay`` over ``base`` (overlay wins; pure)."""
    out: Dict[str, Any] = {k: v for k, v in base.items()}
    for key, value in overlay.items():
        if isinstance(value, Mapping) and isinstance(out.get(key), Mapping):
            out[key] = deep_merge(out[key], value)
        else:
            out[key] = value
    return out


def _dig(data: Mapping[str, Any], dotted: str) -> Any:
    node: Any = data
    for part in dotted.split("."):
        if not isinstance(node, Mapping) or part not in node:
            return None
        node = node[part]
    return node


def _quick_caps(merged: Dict[str, Any]) -> Dict[str, Any]:
    """CI smoke mode: cap the expensive knobs, never raise them."""
    caps = {
        "dataset": {"n_events": 1500},
        "training": {"hidden_epochs": 1, "classifier_epochs": 2},
        "hyperopt": {"trials": 2},
        "serving": {"enabled": False},
    }
    out = dict(merged)
    for section, fields in caps.items():
        base = out.get(section)
        node = dict(base) if isinstance(base, Mapping) else {}
        for key, cap in fields.items():
            current = node.get(key)
            if isinstance(cap, bool) or current is None:
                node[key] = cap
            elif isinstance(current, (int, float)) and not isinstance(current, bool):
                node[key] = min(current, cap)
            # A non-numeric value stays put so validation reports it, rather
            # than the cap silently papering over a user error.
        out[section] = node
    return out


def compose_config(
    file_data: Optional[Mapping[str, Any]] = None,
    overrides: Optional[Mapping[str, Any]] = None,
    scenario: Optional[str] = None,
    quick: bool = False,
    source: str = "config",
) -> ExperimentConfig:
    """Layer built-ins < scenario defaults < file < overrides and validate.

    Parameters
    ----------
    file_data:
        The user file as a plain dict (:func:`load_config_file`), or ``None``.
    overrides:
        Nested dict from :func:`parse_set_overrides` (highest precedence).
    scenario:
        Explicit scenario name (``repro run --scenario imbalance``); wins
        over a scenario named in the file, loses to a ``--set
        dataset.scenario=...`` override.
    quick:
        Apply CI-smoke caps (events/epochs/trials, serving off) after all
        layers merge.
    source:
        Label used in error paths when the failure is not tied to one field.
    """
    from repro.datasets.registry import get_scenario

    file_data = dict(file_data) if file_data else {}
    overrides = dict(overrides) if overrides else {}

    name = (
        _dig(overrides, "dataset.scenario")
        or scenario
        or _dig(file_data, "dataset.scenario")
        or DatasetSection().scenario
    )
    if not isinstance(name, str):
        raise ConfigError("dataset.scenario", f"must be a string, got {type(name).__name__}")
    spec = get_scenario(name)  # raises ConfigError with path on unknown names

    merged: Dict[str, Any] = deep_merge(spec.default_config(), file_data)
    merged = deep_merge(merged, overrides)
    merged = deep_merge(merged, {"dataset": {"scenario": spec.name}})
    if quick:
        merged = _quick_caps(merged)
    return build_config(merged, source=source)


def compose_from_files(
    paths: Sequence[Union[str, Path]],
    overrides: Optional[Mapping[str, Any]] = None,
    quick: bool = False,
) -> List[ExperimentConfig]:
    """Load and compose several config files with one shared override set."""
    configs: List[ExperimentConfig] = []
    for path in paths:
        data = load_config_file(path)
        configs.append(
            compose_config(data, overrides=overrides, quick=quick, source=str(path))
        )
    return configs
