"""Typed, validated experiment-configuration schema.

An experiment is *data*: one :class:`ExperimentConfig` with five sections —
``dataset`` / ``model`` / ``training`` / ``serving`` / ``hyperopt`` — plus a
top-level ``seed``.  Every section is a frozen dataclass, and
:func:`build_config` turns a plain (merged) mapping into a validated config:

* **unknown keys** raise :class:`~repro.exceptions.ConfigError` carrying the
  full dotted path (``training.comn`` -> "unknown key", with the valid keys
  listed);
* **wrong types** raise with the path and both the expected and the actual
  type (ints are accepted where floats are expected; bools are *not*
  accepted as ints — a YAML ``true`` can never silently become ``1`` epoch);
* **domain violations** (negative epochs, density outside (0, 1], unknown
  backend names ...) raise with the path and the legal domain;
* **cross-field contradictions** — combinations that each validate alone but
  cannot mean anything together — raise naming the field that must change
  (e.g. ``training.comm_overlap: on`` with a single-rank serial
  communicator, or ``training.sparse: on`` against a density-1.0 mask that
  has no silent rows to skip).

The schema deliberately mirrors the ``repro train`` flag surface so that a
config file and a flag invocation build byte-identical
:class:`~repro.experiments.config.HiggsExperimentConfig` objects
(test-enforced in ``tests/config/test_runner.py``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.exceptions import ConfigError

__all__ = [
    "ConfigError",
    "DatasetSection",
    "ModelSection",
    "TrainingSection",
    "ServingSection",
    "HyperoptSection",
    "ExperimentConfig",
    "build_config",
    "builtin_defaults",
]

_MODES = ("auto", "on", "off")
_HEADS = ("sgd", "bcpnn")
_HYPEROPT_ALGORITHMS = ("random", "halton", "evolution")
_HYPEROPT_METRICS = ("auc", "accuracy")


@dataclass(frozen=True)
class DatasetSection:
    """Which scenario to draw events from, and how many."""

    scenario: str = "higgs"
    n_events: int = 8000
    n_bins: int = 10
    test_fraction: float = 0.2
    #: Per-seed override for data generation; ``None`` uses the run seed.
    seed: Optional[int] = None
    #: Free-form scalar kwargs forwarded to the scenario's generator
    #: (``signal_fraction``, ``label_noise``, ``drift_strength`` ...).
    params: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ModelSection:
    """BCPNN capacity and learning-rule knobs."""

    n_hypercolumns: int = 1
    n_minicolumns: int = 150
    density: float = 0.3
    head: str = "sgd"
    taupdt: float = 0.02


@dataclass(frozen=True)
class TrainingSection:
    """Schedule, backend and distributed-execution knobs."""

    hidden_epochs: int = 4
    classifier_epochs: int = 8
    batch_size: int = 128
    backend: str = "numpy"
    pipeline: bool = False
    weight_refresh_tol: float = 0.0
    sparse: str = "auto"
    #: Communicator transport spec for data-parallel training: a string from
    #: the :func:`repro.comm.parse_transport_spec` grammar (``"thread:4"``,
    #: ``"process:4"``, ``"tcp://host:port?ranks=8"``, ``"mpi"``).  ``None``
    #: keeps the single-process path (exactly like omitting ``--comm``).
    comm: Optional[str] = None
    #: Legacy communicator size for bare transport names; ``None`` defaults
    #: to 1 (``> 1`` without ``comm`` implies the thread transport).  Prefer
    #: embedding the count in the spec — the pair is deprecated.
    ranks: Optional[int] = None
    comm_overlap: str = "auto"
    sparse_payload: str = "auto"
    #: Recover from crashed ranks mid-training (fault-tolerant transports).
    fault_tolerance: bool = False
    #: Durable checkpoint directory for crash-safe training (null = off);
    #: see ``docs/reliability.md``.
    checkpoint_dir: Optional[str] = None
    #: Save a checkpoint every N epoch boundaries.
    checkpoint_every: int = 1
    #: Keep the newest N checkpoints, rotating older ones out.
    checkpoint_keep: int = 3
    #: Resume from the latest checkpoint in ``checkpoint_dir``.
    resume: bool = False


@dataclass(frozen=True)
class ServingSection:
    """Optional post-training online-serving phase (``repro serve`` knobs)."""

    enabled: bool = False
    host: str = "127.0.0.1"
    port: int = 8477
    batch_size: int = 64
    batch_deadline_ms: float = 5.0
    max_queue_rows: int = 4096
    request_timeout_ms: Optional[float] = None
    #: ``None`` serves on each layer's own resolved backend.
    backend: Optional[str] = None


@dataclass(frozen=True)
class HyperoptSection:
    """Optional search phase replacing the single training run."""

    enabled: bool = False
    algorithm: str = "random"
    trials: int = 8
    metric: str = "auc"
    seed: Optional[int] = None
    #: Mapping from *dotted config paths* (``model.density``,
    #: ``model.taupdt`` ...) to parameter specs understood by
    #: :meth:`repro.hyperopt.SearchSpace.from_dict`.
    space: Mapping[str, Any] = field(default_factory=dict)
    #: Checksummed trial journal path (null = no journal); finished trials
    #: recorded here survive a killed sweep.
    journal: Optional[str] = None
    #: Resume the sweep from the journal, skipping already-finished trials.
    resume: bool = False


@dataclass(frozen=True)
class ExperimentConfig:
    """One fully validated, runnable experiment."""

    seed: int = 0
    dataset: DatasetSection = field(default_factory=DatasetSection)
    model: ModelSection = field(default_factory=ModelSection)
    training: TrainingSection = field(default_factory=TrainingSection)
    serving: ServingSection = field(default_factory=ServingSection)
    hyperopt: HyperoptSection = field(default_factory=HyperoptSection)

    def to_dict(self) -> Dict[str, Any]:
        """Plain nested-dict view (JSON/YAML-serialisable)."""
        out = dataclasses.asdict(self)
        out["dataset"]["params"] = dict(self.dataset.params)
        out["hyperopt"]["space"] = {
            k: dict(v) if isinstance(v, Mapping) else v for k, v in self.hyperopt.space.items()
        }
        return out

    @property
    def dataset_seed(self) -> int:
        """The seed data generation actually uses."""
        return self.seed if self.dataset.seed is None else int(self.dataset.seed)


# --------------------------------------------------------------- coercion
def _type_name(value: Any) -> str:
    return type(value).__name__


def _coerce(value: Any, typ: type, path: str) -> Any:
    """Check/convert one scalar against the schema type, or raise with path."""
    if typ is bool:
        if isinstance(value, bool):
            return value
        raise ConfigError(path, f"expected a boolean, got {_type_name(value)} {value!r}")
    if typ is int:
        # bool is an int subclass; a stray `true` must not become 1 epoch.
        if isinstance(value, int) and not isinstance(value, bool):
            return int(value)
        raise ConfigError(path, f"expected an integer, got {_type_name(value)} {value!r}")
    if typ is float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
        raise ConfigError(path, f"expected a number, got {_type_name(value)} {value!r}")
    if typ is str:
        if isinstance(value, str):
            return value
        raise ConfigError(path, f"expected a string, got {_type_name(value)} {value!r}")
    raise ConfigError(path, f"unsupported schema type {typ!r}")  # pragma: no cover


#: Section field -> (type, optional) overrides where the dataclass default
#: (None) cannot express the concrete type.
_OPTIONAL_TYPES: Dict[Tuple[str, str], type] = {
    ("dataset", "seed"): int,
    ("training", "comm"): str,
    ("training", "ranks"): int,
    ("serving", "request_timeout_ms"): float,
    ("serving", "backend"): str,
    ("hyperopt", "seed"): int,
    ("training", "checkpoint_dir"): str,
    ("hyperopt", "journal"): str,
}

_FREEFORM_MAPPINGS = {("dataset", "params"), ("hyperopt", "space")}


def _build_section(cls: type, data: Mapping[str, Any], section: str) -> Any:
    """Instantiate one section dataclass from a mapping, typed and pathed."""
    if not isinstance(data, Mapping):
        raise ConfigError(
            section, f"expected a mapping of settings, got {_type_name(data)} {data!r}"
        )
    field_names = [f.name for f in dataclasses.fields(cls)]
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        path = f"{section}.{key}"
        if key not in field_names:
            raise ConfigError(path, f"unknown key; valid keys: {', '.join(field_names)}")
        if (section, key) in _FREEFORM_MAPPINGS:
            if not isinstance(value, Mapping):
                raise ConfigError(path, f"expected a mapping, got {_type_name(value)} {value!r}")
            kwargs[key] = dict(value)
            continue
        if value is None and (section, key) in _OPTIONAL_TYPES:
            kwargs[key] = None
            continue
        typ = _OPTIONAL_TYPES.get((section, key))
        if typ is None:
            default = cls.__dataclass_fields__[key].default
            typ = type(default)
        kwargs[key] = _coerce(value, typ, path)
    return cls(**kwargs)


# ------------------------------------------------------------- validation
def _check_choice(value: str, choices: Tuple[str, ...], path: str) -> None:
    if value not in choices:
        raise ConfigError(path, f"must be one of {', '.join(choices)}; got {value!r}")


def _check_positive(value: float, path: str, minimum: float = 1) -> None:
    if value < minimum:
        raise ConfigError(path, f"must be >= {minimum}, got {value}")


def _validate_fields(cfg: ExperimentConfig) -> None:
    """Per-field domain checks, every failure naming its dotted path."""
    from repro.backend import list_backends
    from repro.datasets.registry import list_scenarios

    ds, model, tr, sv, hp = cfg.dataset, cfg.model, cfg.training, cfg.serving, cfg.hyperopt

    if ds.scenario not in list_scenarios():
        raise ConfigError(
            "dataset.scenario",
            f"unknown scenario {ds.scenario!r}; available: {', '.join(list_scenarios())}",
        )
    _check_positive(ds.n_events, "dataset.n_events", minimum=100)
    _check_positive(ds.n_bins, "dataset.n_bins", minimum=2)
    if not 0.0 < ds.test_fraction < 1.0:
        raise ConfigError("dataset.test_fraction", f"must be in (0, 1), got {ds.test_fraction}")
    for key, value in ds.params.items():
        if value is not None and not isinstance(value, (int, float, str, bool)):
            raise ConfigError(
                f"dataset.params.{key}",
                f"generator parameters must be scalars, got {_type_name(value)}",
            )

    _check_positive(model.n_hypercolumns, "model.n_hypercolumns")
    _check_positive(model.n_minicolumns, "model.n_minicolumns", minimum=2)
    if not 0.0 < model.density <= 1.0:
        raise ConfigError("model.density", f"must be in (0, 1], got {model.density}")
    _check_choice(model.head, _HEADS, "model.head")
    if not 0.0 < model.taupdt <= 1.0:
        raise ConfigError("model.taupdt", f"must be in (0, 1], got {model.taupdt}")

    _check_positive(tr.hidden_epochs, "training.hidden_epochs", minimum=0)
    _check_positive(tr.classifier_epochs, "training.classifier_epochs", minimum=0)
    _check_positive(tr.batch_size, "training.batch_size")
    if tr.backend not in list_backends():
        raise ConfigError(
            "training.backend",
            f"unknown backend {tr.backend!r}; available: {', '.join(list_backends())}",
        )
    if tr.weight_refresh_tol < 0:
        raise ConfigError(
            "training.weight_refresh_tol", f"must be non-negative, got {tr.weight_refresh_tol}"
        )
    _check_choice(tr.sparse, _MODES, "training.sparse")
    _check_choice(tr.comm_overlap, _MODES, "training.comm_overlap")
    _check_choice(tr.sparse_payload, _MODES, "training.sparse_payload")
    if tr.comm is not None:
        # The one shared grammar: whatever parse_transport_spec accepts (and
        # only that) is a valid training.comm value.
        from repro.comm import parse_transport_spec
        from repro.exceptions import BackendError

        try:
            parse_transport_spec(tr.comm)
        except BackendError as exc:
            raise ConfigError("training.comm", str(exc)) from None
    if tr.ranks is not None:
        _check_positive(tr.ranks, "training.ranks")
    _check_positive(tr.checkpoint_every, "training.checkpoint_every")
    _check_positive(tr.checkpoint_keep, "training.checkpoint_keep")

    _check_positive(sv.batch_size, "serving.batch_size")
    if sv.port < 0 or sv.port > 65535:
        raise ConfigError("serving.port", f"must be in [0, 65535], got {sv.port}")
    if sv.batch_deadline_ms <= 0:
        raise ConfigError(
            "serving.batch_deadline_ms", f"must be positive, got {sv.batch_deadline_ms}"
        )
    _check_positive(sv.max_queue_rows, "serving.max_queue_rows")
    if sv.request_timeout_ms is not None and sv.request_timeout_ms <= 0:
        raise ConfigError(
            "serving.request_timeout_ms",
            f"must be positive (or null to disable), got {sv.request_timeout_ms}",
        )
    if sv.backend is not None and sv.backend not in list_backends():
        raise ConfigError(
            "serving.backend",
            f"unknown backend {sv.backend!r}; available: {', '.join(list_backends())}",
        )

    _check_choice(hp.algorithm, _HYPEROPT_ALGORITHMS, "hyperopt.algorithm")
    _check_choice(hp.metric, _HYPEROPT_METRICS, "hyperopt.metric")
    _check_positive(hp.trials, "hyperopt.trials")


_SEARCHABLE_SECTIONS = ("model", "training")


def _validate_cross(cfg: ExperimentConfig) -> None:
    """Reject combinations that validate field-by-field but contradict."""
    tr = cfg.training
    parsed = None
    if tr.comm is not None:
        from repro.comm import parse_transport_spec

        parsed = parse_transport_spec(tr.comm)  # already field-validated
    name = parsed.name if parsed is not None else None
    if parsed is not None and parsed.ranks is not None and tr.ranks not in (None, 1, parsed.ranks):
        raise ConfigError(
            "training.ranks",
            f"ranks={tr.ranks} disagrees with the rank count {parsed.ranks} "
            f"embedded in training.comm {tr.comm!r}; drop training.ranks",
        )
    ranks = 1 if tr.ranks is None else tr.ranks
    if parsed is not None and parsed.ranks is not None:
        ranks = parsed.ranks

    if tr.comm_overlap == "on" and name in (None, "serial"):
        raise ConfigError(
            "training.comm_overlap",
            "'on' requires a multi-rank communicator, but training.comm is "
            f"{tr.comm!r}; set training.comm to thread/process/tcp/mpi or drop "
            "the override",
        )
    if name == "serial" and ranks > 1:
        raise ConfigError(
            "training.ranks",
            f"the serial transport is single-rank but ranks={ranks}; "
            "use training.comm: thread:N or process:N",
        )
    if tr.fault_tolerance:
        from repro.comm import transport_capabilities

        caps = transport_capabilities().get(name) if name is not None else None
        if caps is None or not caps["fault_tolerant"]:
            raise ConfigError(
                "training.fault_tolerance",
                "requires a fault-tolerant transport, but training.comm is "
                f"{tr.comm!r}; use process:N or tcp://host:port?ranks=N",
            )
    if tr.resume and tr.checkpoint_dir is None:
        raise ConfigError(
            "training.resume",
            "resume: true requires training.checkpoint_dir to point at the "
            "checkpoint directory to resume from",
        )
    if cfg.hyperopt.resume and cfg.hyperopt.journal is None:
        raise ConfigError(
            "hyperopt.resume",
            "resume: true requires hyperopt.journal to point at the trial "
            "journal to resume from",
        )
    if tr.sparse == "on" and cfg.model.density >= 1.0:
        raise ConfigError(
            "training.sparse",
            "'on' forces the block-sparse gather-GEMM plan, but model.density is 1.0 "
            "— a fully dense mask has no silent rows to skip; lower the density or "
            "use sparse: auto/off",
        )
    if cfg.hyperopt.enabled:
        if not cfg.hyperopt.space:
            raise ConfigError(
                "hyperopt.space",
                "hyperopt.enabled is true but the search space is empty; declare at "
                "least one parameter (e.g. model.density: {type: float, low: 0.1, "
                "high: 0.6})",
            )
        for name in cfg.hyperopt.space:
            section = str(name).split(".", 1)[0]
            if section not in _SEARCHABLE_SECTIONS:
                raise ConfigError(
                    f"hyperopt.space.{name}",
                    "search-space parameters must target the model or training "
                    f"section, got {name!r}",
                )
            # The dotted target must exist in the schema; an unknown field
            # would otherwise only fail deep inside trial evaluation.
            parts = str(name).split(".")
            if len(parts) != 2 or parts[1] not in {
                f.name for f in dataclasses.fields(ModelSection if section == "model" else TrainingSection)
            }:
                raise ConfigError(
                    f"hyperopt.space.{name}", f"no such configurable field {name!r}"
                )


def build_config(data: Mapping[str, Any], source: str = "config") -> ExperimentConfig:
    """Validate a merged plain mapping into an :class:`ExperimentConfig`.

    Raises
    ------
    ConfigError
        On any unknown key, type mismatch, domain violation or cross-field
        contradiction — always carrying the dotted path to the field.
    """
    if not isinstance(data, Mapping):
        raise ConfigError(source, f"the config must be a mapping, got {_type_name(data)}")
    sections = {
        "dataset": DatasetSection,
        "model": ModelSection,
        "training": TrainingSection,
        "serving": ServingSection,
        "hyperopt": HyperoptSection,
    }
    kwargs: Dict[str, Any] = {}
    for key, value in data.items():
        if key == "seed":
            kwargs["seed"] = _coerce(value, int, "seed")
        elif key in sections:
            kwargs[key] = _build_section(sections[key], value, key)
        else:
            raise ConfigError(
                str(key),
                f"unknown top-level key; valid keys: seed, {', '.join(sections)}",
            )
    cfg = ExperimentConfig(**kwargs)
    _validate_fields(cfg)
    _validate_cross(cfg)
    return cfg


def builtin_defaults() -> Dict[str, Any]:
    """The lowest-precedence layer: the schema's own defaults as a dict."""
    return ExperimentConfig().to_dict()
