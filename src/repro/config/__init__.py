"""Declarative experiment configs: typed schema, layered loader, runner.

The knob surface of this stack (backend, comm transport/ranks, pipeline,
sparse policy, refresh tolerance, comm overlap, serving and hyperopt flags)
outgrew CLI flags; this package makes an experiment *data* instead:

>>> from repro.config import compose_config, run_experiment
>>> cfg = compose_config({"model": {"density": 0.3}}, scenario="higgs")
>>> result = run_experiment(cfg)          # doctest: +SKIP

``repro run config.yaml`` is the CLI face (see :mod:`repro.cli`); scenario
defaults come from :mod:`repro.datasets.registry`.  Validation failures are
always a typed :class:`~repro.exceptions.ConfigError` carrying the dotted
path to the offending field.
"""

from repro.config.schema import (
    ConfigError,
    DatasetSection,
    ModelSection,
    TrainingSection,
    ServingSection,
    HyperoptSection,
    ExperimentConfig,
    build_config,
    builtin_defaults,
)
from repro.config.loader import (
    HAVE_YAML,
    load_config_file,
    parse_set_overrides,
    deep_merge,
    compose_config,
    compose_from_files,
)
from repro.config.runner import run_experiment, run_hyperopt, build_prediction_server

__all__ = [
    "ConfigError",
    "DatasetSection",
    "ModelSection",
    "TrainingSection",
    "ServingSection",
    "HyperoptSection",
    "ExperimentConfig",
    "build_config",
    "builtin_defaults",
    "HAVE_YAML",
    "load_config_file",
    "parse_set_overrides",
    "deep_merge",
    "compose_config",
    "compose_from_files",
    "run_experiment",
    "run_hyperopt",
    "build_prediction_server",
]
