"""Execute a validated :class:`~repro.config.schema.ExperimentConfig`.

``run_experiment`` is the programmatic core of ``repro run``: resolve the
scenario, prepare its data, train and evaluate — through *exactly* the same
code path as the historical ``repro train`` flags (one shared comm resolver,
one ``HiggsExperimentConfig``, one ``train_and_evaluate``), so a config file
and the equivalent flag invocation produce bitwise-identical weights and
predictions (test-enforced).

When ``hyperopt.enabled`` the single run is replaced by a search over the
declared space (parameter names are dotted config paths applied as
overrides per trial).  When ``serving.enabled`` the trained network is
handed to :func:`build_prediction_server` — ``repro run`` then serves it
until interrupted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from repro.config.loader import deep_merge
from repro.config.schema import ExperimentConfig, ServingSection, build_config
from repro.utils.logging import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.serving.server import PredictionServer

logger = get_logger(__name__)

__all__ = ["run_experiment", "run_hyperopt", "build_prediction_server"]


def _experiment_config(config: ExperimentConfig):
    from repro.experiments.config import HiggsExperimentConfig

    return HiggsExperimentConfig.from_schema(config)


def run_experiment(
    config: ExperimentConfig, comm=None, data=None
) -> Dict[str, Any]:
    """Train + evaluate one experiment described by ``config``.

    Parameters
    ----------
    config:
        A validated config (:func:`repro.config.loader.compose_config`).
    comm:
        Optional pre-built communicator.  ``None`` resolves
        ``training.comm``/``training.ranks`` through the *same*
        :func:`repro.comm.factory.resolve_comm` the CLI flags use (and then
        owns/closes the result).
    data:
        Optional pre-prepared :class:`~repro.experiments.higgs_pipeline.HiggsData`
        (reused across a sweep); ``None`` prepares the scenario's data.

    Returns
    -------
    dict
        The ``train_and_evaluate`` result dict, extended with ``scenario``
        and the fully merged ``config_dict`` for provenance.  With
        ``hyperopt.enabled``, the search summary from :func:`run_hyperopt`.
    """
    from repro.comm.factory import resolve_comm
    from repro.datasets.registry import get_scenario
    from repro.experiments.higgs_pipeline import train_and_evaluate

    if config.hyperopt.enabled:
        return run_hyperopt(config, data=data)

    scenario = get_scenario(config.dataset.scenario)
    if data is None:
        data = scenario.prepare(config.dataset, seed=config.dataset_seed)
    own_comm = comm is None
    if comm is None:
        comm = resolve_comm(config.training.comm, config.training.ranks)
    try:
        result = train_and_evaluate(_experiment_config(config), data=data, comm=comm)
        if comm is not None:
            result["comm"] = {"transport": comm.transport, "ranks": int(comm.size)}
    finally:
        if own_comm and comm is not None:
            comm.close()
    result["scenario"] = scenario.name
    result["config_dict"] = config.to_dict()
    return result


def run_hyperopt(config: ExperimentConfig, data=None) -> Dict[str, Any]:
    """Search the declared ``hyperopt.space`` over the configured scenario.

    Each trial overlays its sampled parameters (dotted config paths) on the
    base config, revalidates through the schema, and trains through the
    standard pipeline on the *shared* prepared data — so trials differ only
    in the knobs under search.
    """
    from repro.datasets.registry import get_scenario
    from repro.experiments.higgs_pipeline import train_and_evaluate
    from repro.hyperopt import (
        EvolutionarySearch,
        HaltonSearch,
        RandomSearch,
        SearchSpace,
    )

    hp = config.hyperopt
    space = SearchSpace.from_dict(dict(hp.space))
    scenario = get_scenario(config.dataset.scenario)
    if data is None:
        data = scenario.prepare(config.dataset, seed=config.dataset_seed)
    base = config.to_dict()
    base["hyperopt"] = dict(base["hyperopt"], enabled=False)
    metric = hp.metric

    def objective(trial_params: Dict[str, Any]) -> float:
        overlay: Dict[str, Any] = {}
        for dotted, value in trial_params.items():
            section, key = str(dotted).split(".", 1)
            overlay.setdefault(section, {})[key] = value
        trial_cfg = build_config(deep_merge(base, overlay), source="hyperopt trial")
        result = train_and_evaluate(_experiment_config(trial_cfg), data=data)
        return float(result[metric])

    seed = config.seed if hp.seed is None else hp.seed
    drivers = {
        "random": RandomSearch,
        "halton": HaltonSearch,
        "evolution": EvolutionarySearch,
    }
    journal = None
    if hp.journal is not None:
        from repro.hyperopt import ExperimentJournal

        journal = ExperimentJournal(hp.journal, experiment=scenario.name)
    search = drivers[hp.algorithm](space, seed=seed, journal=journal, resume=hp.resume)
    outcome = search.optimize(objective, n_trials=hp.trials)
    best = outcome.best_trial
    logger.info(
        "hyperopt (%s, %d trials): best %s=%.4f at %s",
        hp.algorithm,
        len(outcome),
        metric,
        best.score,
        best.config,
    )
    return {
        "scenario": scenario.name,
        "algorithm": hp.algorithm,
        "metric": metric,
        "n_trials": len(outcome),
        "best_score": float(best.score),
        "best_params": dict(best.config),
        "trials": [t.as_dict() for t in outcome.trials],
        "config_dict": config.to_dict(),
    }


def build_prediction_server(network, serving: ServingSection) -> "PredictionServer":
    """Wire a trained network into a :class:`PredictionServer` per config."""
    from repro.serving import ModelRunner
    from repro.serving.server import PredictionServer

    runner = ModelRunner(network, batch_size=serving.batch_size, backend=serving.backend)
    return PredictionServer.from_settings(
        runner,
        {
            "host": serving.host,
            "port": serving.port,
            "batch_size": serving.batch_size,
            "batch_deadline_ms": serving.batch_deadline_ms,
            "max_queue_rows": serving.max_queue_rows,
            "request_timeout_ms": serving.request_timeout_ms,
        },
    )
