"""Deterministic, seed-driven fault injection.

Robustness claims need to be *tested*, not asserted: this module is the one
registry every crash/corruption hook in the codebase consults, so a test (or
the CI chaos job) can inject worker crashes, driver kills, checkpoint I/O
failures and flaky TCP links from one declarative spec — deterministically,
so a failing chaos run replays exactly.

Activation
----------
A :class:`FaultPlan` is installed either explicitly (tests call
:func:`install_plan`) or from the environment: ``REPRO_FAULTS`` holds the
spec, ``REPRO_FAULTS_SEED`` the seed of the plan's RNG (used by
probabilistic rules and byte corruption).  Environment activation is what
the CLI chaos paths use — a subprocess under test inherits the variables and
its faults fire without any code changes.

Spec grammar
------------
``site[@key=value[,key=value...]][;site2...]`` — for example::

    driver.kill@epoch=2
    worker.crash@rank=1,epoch=0,batch=3
    checkpoint.fsync@count=1;tcp.delay@p=0.2,seconds=0.01

Matching keys (``rank``, ``epoch``, ``batch``, ``step`` ...) are compared as
integers against the context the call site passes to :func:`fault_point`;
a rule only fires when every matching key it names is present and equal.
Reserved keys configure behaviour instead of matching: ``count`` (how many
times the rule may fire; default 1, or unlimited for probabilistic rules),
``p`` (fire with this probability per eligible call), ``mode``
(``exit``/``raise`` for the kill sites) and ``seconds`` (delay duration).

Sites wired through the codebase:

=========================  ====================================================
``driver.kill``            kill the driver at a training epoch boundary
                           (``mode=exit`` hard-exits — the chaos-job default —
                           ``mode=raise`` raises :class:`FaultInjected`)
``worker.crash``           kill a worker rank at a global batch (subsumes the
                           legacy ``--inject-crash RANK:EPOCH:BATCH`` flag)
``checkpoint.fsync``       fail the fsync during an atomic checkpoint write
``checkpoint.short_write`` truncate the temp-file write partway through
``checkpoint.corrupt_read`` flip bytes while reading a checkpoint back
``tcp.delay``              sleep before sending a TCP frame
``tcp.drop``               silently drop an outgoing TCP frame
=========================  ====================================================
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ConfigurationError, FaultInjected

__all__ = [
    "FaultRule",
    "FaultPlan",
    "fault_point",
    "install_plan",
    "active_plan",
    "parse_spec",
    "kill_driver",
    "crash_injection_from_plan",
]

ENV_SPEC = "REPRO_FAULTS"
ENV_SEED = "REPRO_FAULTS_SEED"

#: Keys that configure rule behaviour rather than matching the context.
_BEHAVIOUR_KEYS = frozenset({"count", "p", "mode", "seconds"})

#: Exit code used by ``mode=exit`` kills, distinct from normal failures so
#: chaos tests can assert the process died from the injected fault.
KILL_EXIT_CODE = 23


class FaultRule:
    """One parsed ``site@k=v,...`` rule with a remaining-fire budget."""

    __slots__ = ("site", "params", "remaining")

    def __init__(self, site: str, params: Dict[str, str]) -> None:
        self.site = site
        self.params = dict(params)
        if "count" in params:
            self.remaining: Optional[int] = int(params["count"])
        elif "p" in params:
            self.remaining = None  # probabilistic rules fire until removed
        else:
            self.remaining = 1

    def matches(self, context: Dict[str, object]) -> bool:
        for key, value in self.params.items():
            if key in _BEHAVIOUR_KEYS:
                continue
            if key not in context:
                return False
            try:
                if int(context[key]) != int(value):
                    return False
            except (TypeError, ValueError):
                if str(context[key]) != str(value):
                    return False
        return True

    def param_float(self, key: str, default: float) -> float:
        return float(self.params.get(key, default))

    def param_str(self, key: str, default: str) -> str:
        return str(self.params.get(key, default))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultRule({self.site!r}, {self.params!r}, remaining={self.remaining})"


def parse_spec(spec: str) -> List[FaultRule]:
    """Parse a ``site@k=v,...;site2...`` spec string into rules."""
    rules: List[FaultRule] = []
    for part in str(spec).split(";"):
        part = part.strip()
        if not part:
            continue
        site, _, tail = part.partition("@")
        site = site.strip()
        if not site:
            raise ConfigurationError(f"fault rule has no site: {part!r}")
        params: Dict[str, str] = {}
        if tail:
            for pair in tail.split(","):
                key, sep, value = pair.partition("=")
                if not sep or not key.strip():
                    raise ConfigurationError(
                        f"fault parameter must be key=value, got {pair!r} in {part!r}"
                    )
                params[key.strip()] = value.strip()
        rules.append(FaultRule(site, params))
    return rules


class FaultPlan:
    """A deterministic set of fault rules sharing one seeded RNG."""

    def __init__(self, spec: str = "", seed: int = 0) -> None:
        self.spec = str(spec)
        self.seed = int(seed)
        self.rules = parse_spec(self.spec)
        self.rng = np.random.default_rng(self.seed)
        self.fired: List[Dict[str, object]] = []

    def match(self, site: str, context: Dict[str, object]) -> Optional[FaultRule]:
        """The first armed rule for ``site`` matching ``context`` (consumed)."""
        for rule in self.rules:
            if rule.site != site:
                continue
            if rule.remaining is not None and rule.remaining <= 0:
                continue
            if not rule.matches(context):
                continue
            if "p" in rule.params and self.rng.random() >= float(rule.params["p"]):
                continue
            if rule.remaining is not None:
                rule.remaining -= 1
            self.fired.append({"site": site, **context})
            return rule
        return None

    def corrupt(self, data: bytes, n_bytes: int = 8) -> bytes:
        """Deterministically flip ``n_bytes`` bytes of ``data``."""
        if not data:
            return data
        buf = bytearray(data)
        positions = self.rng.integers(0, len(buf), size=min(n_bytes, len(buf)))
        for pos in positions:
            buf[int(pos)] ^= 0xFF
        return bytes(buf)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(spec={self.spec!r}, seed={self.seed})"


# The module-level active plan.  ``_loaded`` distinguishes "not yet read
# from the environment" from "explicitly installed (possibly None)".
_plan: Optional[FaultPlan] = None
_loaded = False


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install (or clear, with ``None``) the process-wide fault plan."""
    global _plan, _loaded
    _plan = plan
    _loaded = True


def active_plan() -> Optional[FaultPlan]:
    """The installed plan, lazily initialised from ``REPRO_FAULTS``."""
    global _plan, _loaded
    if not _loaded:
        spec = os.environ.get(ENV_SPEC, "").strip()
        seed = int(os.environ.get(ENV_SEED, "0") or 0)
        _plan = FaultPlan(spec, seed=seed) if spec else None
        _loaded = True
    return _plan


def fault_point(site: str, **context) -> Optional[FaultRule]:
    """Consult the active plan at an instrumented site (fast no-op path).

    Returns the matched (and consumed) rule, or ``None``.  The call site
    decides what the fault *means* — raise, exit, sleep, corrupt — so this
    function never has side effects of its own.
    """
    plan = active_plan()
    if plan is None:
        return None
    return plan.match(site, context)


def kill_driver(rule: FaultRule, **context) -> None:
    """Execute a matched ``driver.kill`` rule.

    ``mode=exit`` (default) hard-exits the interpreter with
    :data:`KILL_EXIT_CODE` — the real preemption/OOM shape the chaos job
    tests.  ``mode=raise`` raises :class:`FaultInjected` for in-process
    tests that must keep their interpreter.
    """
    mode = rule.param_str("mode", "exit")
    if mode == "raise":
        raise FaultInjected(f"injected driver kill at {context}")
    os._exit(KILL_EXIT_CODE)  # pragma: no cover - exercised via subprocess


def crash_injection_from_plan() -> Optional[Dict[str, int]]:
    """A ``worker.crash`` rule as the legacy ``{rank, epoch, batch}`` dict.

    The distributed trainer's historical ``fault_injection`` option predates
    this module; the CLI uses this helper so ``REPRO_FAULTS`` subsumes
    ``--inject-crash`` without touching the SPMD program's hook.  The rule
    is consumed (crash injections fire exactly once).
    """
    plan = active_plan()
    if plan is None:
        return None
    for rule in plan.rules:
        if rule.site != "worker.crash" or (rule.remaining is not None and rule.remaining <= 0):
            continue
        missing = {"rank", "epoch", "batch"} - set(rule.params)
        if missing:
            raise ConfigurationError(
                f"worker.crash rule needs rank/epoch/batch, missing {sorted(missing)}"
            )
        if rule.remaining is not None:
            rule.remaining -= 1
        return {key: int(rule.params[key]) for key in ("rank", "epoch", "batch")}
    return None
